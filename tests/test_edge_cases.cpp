// Edge-case and failure-injection tests across modules: malformed files,
// degenerate configurations, ops accounting, and weight propagation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/mrscan.hpp"
#include "data/synthetic.hpp"
#include "gpu/device.hpp"
#include "index/kdtree.hpp"
#include "io/point_file.hpp"
#include "util/rng.hpp"

namespace mg = mrscan::geom;
namespace fs = std::filesystem;

TEST(DeviceEdge, RejectsInvalidSpecs) {
  mrscan::gpu::DeviceSpec spec;
  spec.sm_count = 0;
  EXPECT_THROW(mrscan::gpu::VirtualDevice{spec}, std::invalid_argument);
  spec = {};
  spec.block_op_rate = 0.0;
  EXPECT_THROW(mrscan::gpu::VirtualDevice{spec}, std::invalid_argument);
  spec = {};
  spec.pcie_bandwidth_bps = -1.0;
  EXPECT_THROW(mrscan::gpu::VirtualDevice{spec}, std::invalid_argument);
}

TEST(DeviceEdge, EmptyLaunchChargesOnlyOverhead) {
  mrscan::gpu::DeviceSpec spec;
  spec.kernel_launch_overhead_s = 1.0;
  mrscan::gpu::VirtualDevice device(spec);
  device.account_launch({});
  EXPECT_DOUBLE_EQ(device.stats().kernel_seconds, 1.0);
  EXPECT_EQ(device.stats().blocks_executed, 0u);
}

TEST(DeviceEdge, ResetStatsClearsEverything) {
  mrscan::gpu::VirtualDevice device;
  device.copy_to_device(1000);
  device.account_launch({42});
  EXPECT_GT(device.device_seconds(), 0.0);
  device.reset_stats();
  EXPECT_DOUBLE_EQ(device.device_seconds(), 0.0);
  EXPECT_EQ(device.stats().total_ops, 0u);
}

TEST(KDTreeEdge, OpsCounterTracksDistanceComputations) {
  const auto pts = mrscan::data::uniform_points(
      500, mg::BBox{0.0, 0.0, 5.0, 5.0}, 1);
  mrscan::index::KDTree tree(pts, mrscan::index::KDTreeConfig{32, 0.0});
  std::uint64_t ops = 0;
  tree.count_in_radius(pts[0], 0.5, 0, &ops);
  EXPECT_GT(ops, 0u);
  EXPECT_LE(ops, pts.size());

  // Early exit must do no more work than the exact count.
  std::uint64_t ops_exact = 0, ops_early = 0;
  tree.count_in_radius(pts[0], 2.0, 0, &ops_exact);
  tree.count_in_radius(pts[0], 2.0, 1, &ops_early);
  EXPECT_LE(ops_early, ops_exact);

  std::vector<std::uint32_t> out;
  std::uint64_t query_ops = 0;
  tree.radius_query(pts[0], 2.0, out, &query_ops);
  EXPECT_EQ(query_ops, ops_exact);  // same traversal, no early exit
}

TEST(IoEdge, TruncatedBinaryFileThrows) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("mrscan_edge_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto pts = mrscan::data::uniform_points(
      100, mg::BBox{0.0, 0.0, 1.0, 1.0}, 2);
  const fs::path path = dir / "trunc.bin";
  mrscan::io::write_points_binary(path, pts);

  // Chop the file mid-record: header still promises 100 points.
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 50);
  EXPECT_THROW(mrscan::io::read_points_binary(path), std::runtime_error);
  EXPECT_THROW(mrscan::io::read_points_binary_range(path, 90, 10),
               std::runtime_error);
  // The header itself is still readable.
  EXPECT_EQ(mrscan::io::binary_point_count(path), 100u);
  fs::remove_all(dir);
}

TEST(PipelineEdge, WeightsSurviveToOutput) {
  // Every input weight must appear unchanged on its output record.
  mg::PointSet points;
  mrscan::util::Rng rng(3);
  for (mg::PointId id = 0; id < 2000; ++id) {
    points.push_back(mg::Point{id, rng.uniform(0.0, 2.0),
                               rng.uniform(0.0, 2.0),
                               static_cast<float>(id % 17) + 0.5f});
  }
  mrscan::core::MrScanConfig config;
  config.params = {0.2, 4};
  config.leaves = 4;
  config.keep_noise = true;
  const auto result = mrscan::core::MrScan(config).run(points);
  ASSERT_EQ(result.output.size(), points.size());
  for (const auto& record : result.output) {
    EXPECT_FLOAT_EQ(record.point.weight,
                    static_cast<float>(record.point.id % 17) + 0.5f);
  }
}

TEST(PipelineEdge, AllPointsIdentical) {
  // A pathological single-location dataset: one dense box, one cluster.
  mg::PointSet points;
  for (mg::PointId id = 0; id < 500; ++id) {
    points.push_back(mg::Point{id, 1.0, 1.0, 1.0f});
  }
  mrscan::core::MrScanConfig config;
  config.params = {0.1, 4};
  config.leaves = 4;
  const auto result = mrscan::core::MrScan(config).run(points);
  EXPECT_EQ(result.cluster_count, 1u);
  EXPECT_EQ(result.output.size(), points.size());
}

TEST(PipelineEdge, MorePartitionNodesThanPoints) {
  const auto points = mrscan::data::uniform_points(
      10, mg::BBox{0.0, 0.0, 1.0, 1.0}, 4);
  mrscan::core::MrScanConfig config;
  config.params = {0.3, 2};
  config.leaves = 4;
  config.partition_nodes = 64;  // more workers than data
  const auto result = mrscan::core::MrScan(config).run(points);
  EXPECT_LE(result.leaves_used, 4u);
}

TEST(PipelineEdge, InvalidConfigsThrow) {
  mrscan::core::MrScanConfig config;
  config.params = {0.0, 4};
  EXPECT_THROW(mrscan::core::MrScan{config}, std::invalid_argument);
  config.params = {0.1, 0};
  EXPECT_THROW(mrscan::core::MrScan{config}, std::invalid_argument);
  config.params = {0.1, 4};
  config.leaves = 0;
  EXPECT_THROW(mrscan::core::MrScan{config}, std::invalid_argument);
}
