// Differential battery for the serving mode: after EVERY prefix of a
// seeded >= 200-mutation stream, the ClusterService's published labels
// are the same clustering as a cold batch core::MrScan run over the
// surviving point set.
//
// Coverage matrix:
//   * serve host_threads {1, 4}: the two services must be bit-identical
//     (determinism contract), and both equivalent to batch;
//   * batch cluster algos: two-pass verified at every prefix, cell-graph
//     (and host_threads 4) at every kFullMatrixStride-th prefix + final;
//   * a fault-injected twin (dropped publish + straggler epoch) fed the
//     identical stream: labels never diverge, retries land in the stats;
//   * incrementality: on every single-mutation epoch the re-clustered
//     point count stays strictly below the live point count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster_equiv.hpp"
#include "core/mrscan.hpp"
#include "data/stream.hpp"
#include "serve/service.hpp"

namespace md = mrscan::data;
namespace mg = mrscan::geom;
namespace ms = mrscan::serve;

namespace {

constexpr std::size_t kFullMatrixStride = 25;

std::vector<mrscan::dbscan::ClusterId> batch_labels(
    const mg::PointSet& points, const mrscan::dbscan::DbscanParams& params,
    mrscan::cluster::ClusterAlgo algo, std::size_t host_threads) {
  mrscan::core::MrScanConfig config;
  config.params = params;
  config.leaves = 4;
  config.partition_nodes = 2;
  config.host_threads = host_threads;
  config.cluster_algo = algo;
  return mrscan::core::MrScan(config).run(points).labels_for(points);
}

void apply(ms::ClusterService& service, const md::Mutation& m) {
  if (m.kind == md::Mutation::Kind::kInsert) {
    service.insert(m.point);
  } else {
    service.remove(m.point.id);
  }
}

void run_battery(const md::StreamConfig& stream_config,
                 const mrscan::dbscan::DbscanParams& params,
                 std::size_t check_stride) {
  const auto stream = md::generate_mutation_stream(stream_config);

  ms::ServeConfig serve1;
  serve1.params = params;
  serve1.host_threads = 1;
  ms::ServeConfig serve4 = serve1;
  serve4.host_threads = 4;
  // The fault twin: the epoch at the stream's midpoint loses a publish
  // attempt, the one after runs 3x slow. Labels must never notice.
  ms::ServeConfig faulty = serve1;
  const auto mid =
      static_cast<std::uint32_t>(2 + stream.mutations.size() / 2);
  faulty.fault_plan.drop(mid, 0).slow(mid + 1, 3.0);

  ms::ClusterService service1(serve1);
  ms::ClusterService service4(serve4);
  ms::ClusterService service_faulty(faulty);
  ASSERT_TRUE(service1.bootstrap(stream.initial).ok);
  ASSERT_TRUE(service4.bootstrap(stream.initial).ok);
  ASSERT_TRUE(service_faulty.bootstrap(stream.initial).ok);

  std::uint64_t fault_retries = 0;
  for (std::size_t prefix = 0; prefix < stream.mutations.size(); ++prefix) {
    apply(service1, stream.mutations[prefix]);
    apply(service4, stream.mutations[prefix]);
    apply(service_faulty, stream.mutations[prefix]);
    const auto r1 = service1.advance_epoch();
    const auto r4 = service4.advance_epoch();
    const auto rf = service_faulty.advance_epoch();
    ASSERT_TRUE(r1.ok && r4.ok && rf.ok) << "prefix " << prefix;
    fault_retries += rf.stats.retries;

    const auto snap1 = service1.snapshot();
    const auto snap4 = service4.snapshot();
    const auto snapf = service_faulty.snapshot();
    const std::string context = "prefix " + std::to_string(prefix + 1);

    // Determinism across worker counts and fault plans: bit-identical.
    ASSERT_EQ(snap1->labels, snap4->labels) << context;
    ASSERT_EQ(snap1->core, snap4->core) << context;
    ASSERT_EQ(snap1->labels, snapf->labels) << context;

    // Incrementality: a single-mutation epoch on an established set never
    // re-clusters the whole world.
    if (r1.stats.live_points > 100) {
      EXPECT_LT(r1.stats.recluster_points, r1.stats.live_points) << context;
    }

    // Equivalence with a cold batch run on the surviving point set.
    ASSERT_TRUE(mrscan::test::same_clustering(
        snap1->labels,
        batch_labels(snap1->points, params,
                     mrscan::cluster::ClusterAlgo::kTwoPass, 1)))
        << context << ": serve diverged from batch (two-pass)";
    const bool full_matrix = (prefix + 1) % check_stride == 0 ||
                             prefix + 1 == stream.mutations.size();
    if (full_matrix) {
      ASSERT_TRUE(mrscan::test::same_clustering(
          snap1->labels,
          batch_labels(snap1->points, params,
                       mrscan::cluster::ClusterAlgo::kCellGraph, 4)))
          << context << ": serve diverged from batch (cell-graph)";
    }
  }
  EXPECT_GE(fault_retries, 1u) << "the fault twin never exercised a retry";
}

}  // namespace

TEST(ServeDifferential, BlobStreamEveryPrefix) {
  md::StreamConfig config;
  config.distribution = md::StreamDistribution::kBlobs;
  config.initial_points = 600;
  config.mutations = 200;
  run_battery(config, {0.35, 6}, kFullMatrixStride);
}

TEST(ServeDifferential, TwitterStreamEveryPrefix) {
  md::StreamConfig config;
  config.distribution = md::StreamDistribution::kTwitter;
  config.initial_points = 400;
  config.mutations = 200;
  config.remove_fraction = 0.45;
  config.seed = 42;
  run_battery(config, {0.05, 5}, kFullMatrixStride);
}

TEST(ServeDifferential, BurstEpochsMatchBatchToo) {
  // Same contract when mutations arrive in bursts (many per epoch):
  // 10 epochs of 25 mutations each over the blob stream.
  md::StreamConfig stream_config;
  stream_config.distribution = md::StreamDistribution::kBlobs;
  stream_config.initial_points = 500;
  stream_config.mutations = 250;
  const auto stream = md::generate_mutation_stream(stream_config);
  const mrscan::dbscan::DbscanParams params{0.35, 6};

  ms::ServeConfig config;
  config.params = params;
  config.host_threads = 2;
  ms::ClusterService service(config);
  ASSERT_TRUE(service.bootstrap(stream.initial).ok);

  std::size_t applied = 0;
  while (applied < stream.mutations.size()) {
    const std::size_t batch_end =
        std::min(applied + 25, stream.mutations.size());
    for (; applied < batch_end; ++applied) {
      apply(service, stream.mutations[applied]);
    }
    const auto result = service.advance_epoch();
    ASSERT_TRUE(result.ok);
    EXPECT_LT(result.stats.recluster_points, result.stats.live_points);
    const auto snapshot = service.snapshot();
    ASSERT_TRUE(mrscan::test::same_clustering(
        snapshot->labels,
        batch_labels(snapshot->points, params,
                     mrscan::cluster::ClusterAlgo::kTwoPass, 1)))
        << "after " << applied << " mutations";
  }
}
