// The build-state / serve-state split (DESIGN §14).
//
// core::MrScan owns *build* state: partitions, the simulated tree, the
// per-leaf GPGPU runs, the merge/sweep machinery, the machine model. None
// of that survives a run, and none of it is what a long-lived service
// needs. ServeState is the distilled, partition-free residue of a batch
// run — the surviving points, their labels, and the clustering
// parameters — the exact ingredients serve::ClusterService needs to warm-
// start an incremental serving session whose labels are provably
// equivalent to re-running the batch pipeline from scratch.
#pragma once

#include <span>
#include <vector>

#include "core/mrscan.hpp"
#include "dbscan/labels.hpp"
#include "geometry/point.hpp"

namespace mrscan::core {

struct ServeState {
  dbscan::DbscanParams params{0.1, 40};
  std::size_t host_threads = 1;
  /// Surviving points, ascending by point id (the service's canonical
  /// iteration order).
  geom::PointSet points;
  /// Batch labels aligned with `points` (kNoise for points the batch run
  /// dropped as noise). Carried so an adopting service can be validated
  /// against the build it descends from.
  std::vector<dbscan::ClusterId> labels;
};

/// Distil a finished batch run into serve state: points sorted by id with
/// their batch labels. keep_noise=false runs drop noise records from
/// MrScanResult::output, so callers that want noise points served must
/// pass the original input via `all_points` (labels for points absent
/// from the output come back as kNoise).
ServeState extract_serve_state(const MrScanConfig& config,
                               const MrScanResult& result,
                               std::span<const geom::Point> all_points = {});

}  // namespace mrscan::core
