// Wall-clock timing helpers.
//
// Timer measures a single interval; PhaseTimer accumulates named phases so
// the pipeline driver can report the partition / cluster / merge / sweep
// breakdown the paper's Figure 9 uses.
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mrscan::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds under named phases. Reporting stays
/// insertion-ordered; a name index keeps add() O(1) amortised so callers
/// with many phases (per-leaf or per-node timings) don't go quadratic.
class PhaseTimer {
 public:
  /// Add `seconds` to phase `name`, creating it if needed.
  void add(const std::string& name, double seconds) {
    const auto [it, inserted] = index_.try_emplace(name, phases_.size());
    if (inserted) {
      phases_.emplace_back(name, seconds);
    } else {
      phases_[it->second].second += seconds;
    }
  }

  /// Accumulated seconds for `name` (0 if never recorded).
  double get(const std::string& name) const {
    const auto it = index_.find(name);
    return it == index_.end() ? 0.0 : phases_[it->second].second;
  }

  double total() const {
    double t = 0.0;
    for (const auto& [n, s] : phases_) t += s;
    return t;
  }

  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  /// RAII guard: times a scope and adds it to the named phase.
  class Scope {
   public:
    Scope(PhaseTimer& pt, std::string name)
        : pt_(pt), name_(std::move(name)) {}
    ~Scope() { pt_.add(name_, timer_.seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimer& pt_;
    std::string name_;
    Timer timer_;
  };

 private:
  std::vector<std::pair<std::string, double>> phases_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace mrscan::util
