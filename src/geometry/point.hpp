// The point record Mr. Scan clusters.
//
// Matches the paper's input format (§3): each point has a unique ID,
// 2D coordinates, and an optional weight carried through to the output.
// The library is written for 2D (as is the paper's evaluation); the grid
// and KD-tree generalise to higher dimensions but are instantiated for 2D.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace mrscan::geom {

using PointId = std::uint64_t;

struct Point {
  PointId id = 0;
  double x = 0.0;
  double y = 0.0;
  float weight = 1.0f;

  friend bool operator==(const Point& a, const Point& b) {
    return a.id == b.id && a.x == b.x && a.y == b.y && a.weight == b.weight;
  }
};

using PointSet = std::vector<Point>;

/// Squared Euclidean distance — the hot kernel; callers compare against
/// eps*eps to avoid the sqrt.
inline double dist2(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double dist2(double ax, double ay, double bx, double by) {
  const double dx = ax - bx;
  const double dy = ay - by;
  return dx * dx + dy * dy;
}

inline double dist(const Point& a, const Point& b) {
  return std::sqrt(dist2(a, b));
}

/// True when a and b are within eps of each other (inclusive, as in the
/// original DBSCAN definition of the Eps-neighbourhood).
inline bool within_eps(const Point& a, const Point& b, double eps) {
  return dist2(a, b) <= eps * eps;
}

}  // namespace mrscan::geom
