// Process-tree topologies for the MRNet-style overlay network.
//
// MRNet (Roth, Arnold, Miller — SC '03) organises tool processes into a
// multi-level tree with arbitrary topology; Mr. Scan uses trees with "at
// most three levels, and each intermediate process has a 256-way fanout of
// child processes whenever possible" (§5.1), plus a separate flat tree for
// the partitioner (§3.1.3).
//
// Node ids: 0 is the root; internal nodes and leaves follow in
// breadth-first order.
#pragma once

#include <cstdint>
#include <vector>

namespace mrscan::mrnet {

class Topology {
 public:
  /// Root with `leaf_count` direct children (the partitioner's shape).
  static Topology flat(std::size_t leaf_count);

  /// The paper's clustering-tree shape: root -> (optional) one level of
  /// intermediate processes with up to `fanout` children each -> leaves.
  /// No intermediate level is created when the root can hold all leaves
  /// (matching Table 1's zero internal processes up to 128 leaves).
  static Topology balanced(std::size_t leaf_count, std::size_t fanout = 256);

  std::size_t node_count() const { return children_.size(); }
  std::size_t leaf_count() const { return leaves_.size(); }
  std::size_t internal_count() const {  // excludes root and leaves
    return node_count() - leaf_count() - 1;
  }

  /// Tree depth in levels (root-only tree = 1).
  std::size_t levels() const { return levels_; }

  bool is_leaf(std::uint32_t node) const {
    return children_[node].empty();
  }
  bool is_root(std::uint32_t node) const { return node == 0; }

  const std::vector<std::uint32_t>& children(std::uint32_t node) const {
    return children_[node];
  }
  std::uint32_t parent(std::uint32_t node) const { return parent_[node]; }

  /// Node ids of the leaves, in leaf-rank order.
  const std::vector<std::uint32_t>& leaves() const { return leaves_; }

  /// Leaf rank of a leaf node id.
  std::uint32_t leaf_rank(std::uint32_t node) const {
    return leaf_rank_[node];
  }

  /// Level of `node`: root = 0, its children = 1, and so on. Used to
  /// contextualise network errors ("filter failed at node 7, level 2").
  std::size_t depth(std::uint32_t node) const;

  /// Maximum fan-out over all nodes.
  std::size_t max_fanout() const;

 private:
  std::vector<std::vector<std::uint32_t>> children_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> leaves_;
  std::vector<std::uint32_t> leaf_rank_;
  std::size_t levels_ = 0;

  void finalize();
};

}  // namespace mrscan::mrnet
