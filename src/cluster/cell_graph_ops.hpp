// Shared cell-graph primitives (DESIGN §12, §14).
//
// The batch cell-graph cluster path (gpu/mrscan_gpu.cpp) and the
// long-lived clustering service (src/serve) connect clusters the same
// way: cells within kCellGraphRings Chebyshev distance are linked when a
// bichromatic closest-pair test over their core points finds a pair
// within Eps. The test itself — early-exiting at the first Eps-close
// pair, charging one op per distance computed — lives here so both
// consumers provably run the identical kernel.
#pragma once

#include <algorithm>
#include <cstdint>

#include "geometry/bbox.hpp"
#include "geometry/point.hpp"

namespace mrscan::cluster {

/// Squared gap between two boxes (0 for touching/overlapping): the
/// Eps-reachability prefilter for a cell-pair connection — when the gap
/// between the cells' core-point bounding boxes exceeds Eps, no core
/// pair can link them and the closest-pair test is skipped entirely.
inline double box_gap2(const geom::BBox& a, const geom::BBox& b) {
  const double gx = std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  const double gy = std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return gx * gx + gy * gy;
}

/// Bichromatic closest-pair Eps test: true when some cross pair from the
/// two point sets is within Eps (squared threshold `eps2`), early-exiting
/// at the first hit. `a(i)` / `b(j)` return the i-th / j-th point of each
/// side; every distance computed adds one to `ops` (the cost-model
/// charge). Scan order is (i, j) row-major, so the op count for a given
/// pair of sets is deterministic.
template <typename PointAtA, typename PointAtB>
bool bcp_within_eps(std::size_t count_a, std::size_t count_b, PointAtA&& a,
                    PointAtB&& b, double eps2, std::uint64_t& ops) {
  for (std::size_t i = 0; i < count_a; ++i) {
    const geom::Point& pa = a(i);
    for (std::size_t j = 0; j < count_b; ++j) {
      ++ops;
      if (geom::dist2(pa, b(j)) <= eps2) return true;
    }
  }
  return false;
}

}  // namespace mrscan::cluster
