#include "gpu/dense_box.hpp"

#include "gpu/audit.hpp"
#include "util/assert.hpp"
#include "util/audit.hpp"

namespace mrscan::gpu {

template <typename Tree>
DenseBoxes detect_dense_boxes(const Tree& tree, double eps,
                              std::size_t min_pts) {
  MRSCAN_REQUIRE(eps > 0.0);
  MRSCAN_REQUIRE(min_pts >= 1);

  DenseBoxes result;
  result.box_of_point.assign(tree.point_count(), DenseBoxes::kNone);

  const double side = dense_box_side(eps);
  const auto leaves = tree.leaves();
  for (std::uint32_t leaf_id = 0; leaf_id < leaves.size(); ++leaf_id) {
    const auto& leaf = leaves[leaf_id];
    if (leaf.size() < min_pts) continue;
    if (leaf.box.width() > side || leaf.box.height() > side) continue;
    const auto box_ordinal = static_cast<std::uint32_t>(result.leaf_ids.size());
    result.leaf_ids.push_back(leaf_id);
    for (std::uint32_t i = leaf.begin; i < leaf.end; ++i) {
      result.box_of_point[tree.order()[i]] = box_ordinal;
    }
    result.covered_points += leaf.size();
  }

  if constexpr (util::kAuditEnabled) {
    audit_dense_boxes(result, tree, eps, min_pts);
  }
  return result;
}

template DenseBoxes detect_dense_boxes<index::KDTree>(const index::KDTree&,
                                                      double, std::size_t);
template DenseBoxes detect_dense_boxes<index::BVH>(const index::BVH&, double,
                                                   std::size_t);

}  // namespace mrscan::gpu
