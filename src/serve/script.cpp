#include "serve/script.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace mrscan::serve {

namespace {

bool fail(ScriptResult& result, std::size_t line_no,
          const std::string& message) {
  result.ok = false;
  result.error = std::to_string(line_no) + ": " + message;
  return false;
}

}  // namespace

ScriptResult run_script(ClusterService& service, std::istream& in,
                        std::ostream& out) {
  ScriptResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string command;
    if (!(fields >> command) || command[0] == '#') continue;
    ++result.commands;
    if (command == "insert") {
      geom::Point p;
      if (!(fields >> p.id >> p.x >> p.y)) {
        fail(result, line_no, "insert wants: id x y [weight]");
        break;
      }
      fields >> p.weight;  // optional; defaults to 1
      service.insert(p);
    } else if (command == "remove") {
      geom::PointId id = 0;
      if (!(fields >> id)) {
        fail(result, line_no, "remove wants: id");
        break;
      }
      service.remove(id);
    } else if (command == "epoch") {
      const EpochResult r = service.advance_epoch();
      ++result.epochs;
      if (r.ok) {
        out << "epoch " << r.stats.epoch << " ok points="
            << r.stats.live_points << " clusters=" << r.stats.clusters
            << " dirty=" << r.stats.dirty_cells
            << " recluster=" << r.stats.recluster_points << "\n";
      } else {
        ++result.failed_epochs;
        out << "epoch " << r.stats.epoch << " failed: " << r.error << "\n";
      }
    } else if (command == "query") {
      geom::PointId id = 0;
      if (!(fields >> id)) {
        fail(result, line_no, "query wants: id");
        break;
      }
      const auto label = service.label_of(id);
      if (label.has_value()) {
        out << "query " << id << " -> " << *label << "\n";
      } else {
        out << "query " << id << " -> unknown\n";
      }
    } else if (command == "stats") {
      dbscan::ClusterId cluster = 0;
      if (!(fields >> cluster)) {
        fail(result, line_no, "stats wants: cluster-id");
        break;
      }
      const auto stats = service.cluster_stats(cluster);
      if (stats.has_value()) {
        out << "stats " << cluster << " -> size=" << stats->size
            << " core=" << stats->core_points
            << " weight=" << stats->weight << "\n";
      } else {
        out << "stats " << cluster << " -> unknown\n";
      }
    } else {
      fail(result, line_no, "unknown command '" + command + "'");
      break;
    }
  }
  return result;
}

}  // namespace mrscan::serve
