// Ablation: tree shape — fanout and rebalancing.
//
// (a) Fanout: the paper uses 256-way fanout, <= 3 levels, and attributes
//     part of its startup/merge linearity to those wide fanouts. Sweeping
//     fanout shows the latency trade: wide = fewer hops but serialised
//     receives at the parent; narrow = more levels.
// (b) Rebalancing threshold (1.075 in the paper): partition size spread
//     with rebalancing off / at several thresholds.
#include <cstdio>

#include "common/experiment.hpp"
#include "data/twitter.hpp"
#include "mrnet/network.hpp"
#include "partition/partitioner.hpp"

int main() {
  using namespace mrscan;
  const auto scale = bench::BenchScale::from_env();
  bench::print_header("Ablation: tree fanout (reduction of 1 KiB packets)");

  const std::size_t leaves = scale.max_leaves * 4;
  std::printf("leaves: %zu\n%8s %8s %10s %14s\n", leaves, "fanout", "levels",
              "internal", "reduce_time_s");
  for (const std::size_t fanout : {8UL, 16UL, 64UL, 256UL}) {
    if (fanout >= leaves) continue;
    mrnet::Topology topology = mrnet::Topology::balanced(leaves, fanout);
    sim::TitanParams titan;
    mrnet::Network net(topology, titan.net, titan.cpu_op_rate);
    std::vector<mrnet::Packet> inputs(leaves);
    for (auto& p : inputs) {
      for (int i = 0; i < 128; ++i) p.put_u64(i);  // 1 KiB payload
    }
    net.reduce(std::move(inputs),
               [](std::uint32_t, std::vector<mrnet::Packet> children,
                  std::uint64_t& ops) {
                 ops = children.size();
                 return children.empty() ? mrnet::Packet{}
                                         : std::move(children[0]);
               });
    std::printf("%8zu %8zu %10zu %14.6f\n", fanout, topology.levels(),
                topology.internal_count(), net.stats().last_op_seconds);
  }

  bench::print_header("Ablation: partitioner rebalancing threshold");
  data::TwitterConfig tw;
  tw.num_points = scale.quality_points * 4;
  const auto points = data::generate_twitter(tw);
  const geom::GridGeometry geometry{tw.window.min_x, tw.window.min_y, 0.1};
  const index::CellHistogram hist(geometry, points);

  std::printf("%12s | %12s %12s %14s\n", "threshold", "max_part",
              "mean_part", "spread(max/mean)");
  auto report = [&](const char* label,
                    const partition::PartitionerConfig& config) {
    const auto plan = partition::plan_partitions(hist, geometry, config);
    std::uint64_t mx = 0, total = 0;
    for (const auto& part : plan.parts) {
      mx = std::max(mx, part.total_points());
      total += part.total_points();
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(plan.part_count());
    std::printf("%12s | %12llu %12.0f %14.2f\n", label,
                static_cast<unsigned long long>(mx), mean,
                static_cast<double>(mx) / mean);
  };
  report("off", {32, 40, false, 1.075});
  report("1.025", {32, 40, true, 1.025});
  report("1.075", {32, 40, true, 1.075});  // the paper's setting
  report("1.25", {32, 40, true, 1.25});
  report("2.0", {32, 40, true, 2.0});
  return 0;
}
