# CTest runner asserting the CLI flag-audit contract: a bad flag or flag
# value is rejected with a NONZERO exit and EXACTLY ONE stderr line
# matching PATTERN (so scripts can reliably capture the reason).
#
#   cmake -DCLI=<path> "-DARGS=--cluster-algo;bogus" -DPATTERN=<regex>
#         -P cli_error_case.cmake
if(NOT DEFINED CLI OR NOT DEFINED ARGS OR NOT DEFINED PATTERN)
  message(FATAL_ERROR "cli_error_case.cmake needs -DCLI, -DARGS, -DPATTERN")
endif()

execute_process(
  COMMAND ${CLI} ${ARGS}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(exit_code EQUAL 0)
  message(FATAL_ERROR "expected nonzero exit for '${ARGS}', got 0")
endif()
string(REGEX REPLACE "\n$" "" err_trimmed "${err}")
string(REGEX MATCHALL "\n" newlines "${err_trimmed}")
list(LENGTH newlines newline_count)
if(NOT newline_count EQUAL 0)
  message(FATAL_ERROR "expected one stderr line, got:\n${err}")
endif()
if(NOT err_trimmed MATCHES "${PATTERN}")
  message(FATAL_ERROR "stderr '${err_trimmed}' does not match '${PATTERN}'")
endif()
