// TI-DBSCAN (Kryszkiewicz & Lasek, RSCTC 2010) — DBSCAN via the triangle
// inequality, no spatial index.
//
// Cited by the paper as a single-core optimisation whose sorted-order
// neighbourhood determination "is similar to the way our GPU implementation
// of the algorithm uses its KD-tree" (§2.2). Points are sorted by distance
// to a reference point; by the triangle inequality, any Eps-neighbour of p
// must have a reference distance within Eps of p's, so the scan for
// neighbours terminates as soon as the sorted window is exhausted.
#pragma once

#include <span>

#include "dbscan/labels.hpp"
#include "geometry/point.hpp"

namespace mrscan::dbscan {

struct TiDbscanStats {
  std::uint64_t distance_computations = 0;
  std::uint64_t window_candidates = 0;  // points inside the TI window
};

/// Cluster `points` with TI-DBSCAN; equivalent output to dbscan_sequential
/// up to border-point tie-breaks.
Labeling dbscan_ti(std::span<const geom::Point> points,
                   const DbscanParams& params,
                   TiDbscanStats* stats = nullptr);

}  // namespace mrscan::dbscan
