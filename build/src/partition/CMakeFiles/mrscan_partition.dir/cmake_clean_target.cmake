file(REMOVE_RECURSE
  "libmrscan_partition.a"
)
