
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_merge_invariance.cpp" "tests/CMakeFiles/test_merge_invariance.dir/test_merge_invariance.cpp.o" "gcc" "tests/CMakeFiles/test_merge_invariance.dir/test_merge_invariance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrscan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mrscan_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/mrscan_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/mrscan_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/mrscan_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/mrnet/CMakeFiles/mrscan_mrnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrscan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mrscan_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dbscan/CMakeFiles/mrscan_dbscan.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mrscan_io.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mrscan_data.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mrscan_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mrscan_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrscan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
