// Uniform Eps x Eps grid index over a point set.
//
// Cells are exactly Eps on a side, so the Eps-neighbourhood of any point is
// contained in its cell's 3x3 neighbourhood — the property both the
// partitioner's shadow regions (§3.1.1) and the merge algorithm's per-cell
// representative points (§3.3.1) rely on.
//
// Storage is CSR-style: points are bucketed by cell code, cells are kept
// sorted by code, and per-cell point index lists are contiguous.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "geometry/cell.hpp"
#include "geometry/point.hpp"
#include "index/query_scratch.hpp"

namespace mrscan::index {

class Grid {
 public:
  /// Build over `points` (indices into this span are what queries return).
  /// The span must outlive the Grid.
  Grid(geom::GridGeometry geometry, std::span<const geom::Point> points);

  const geom::GridGeometry& geometry() const { return geometry_; }
  std::size_t point_count() const { return points_.size(); }
  std::size_t cell_count() const { return codes_.size(); }

  /// Sorted, de-duplicated cell codes of all non-empty cells.
  std::span<const std::uint64_t> codes() const { return codes_; }

  bool has_cell(geom::CellKey key) const;

  /// Indices (into the original span) of points in `key`'s cell; empty span
  /// when the cell has no points.
  std::span<const std::uint32_t> points_in(geom::CellKey key) const;

  /// Number of points in `key`'s cell.
  std::size_t count_in(geom::CellKey key) const {
    return points_in(key).size();
  }

  /// Visit indices of every point within `radius` of `p` (inclusive). The
  /// scan covers ceil(radius / cell_size) rings of cells around p's cell —
  /// the classic 3x3 scan is the radius <= cell_size case — so any radius
  /// is answered exactly instead of silently dropping neighbours beyond
  /// the first ring. A callback returning bool may stop the scan early by
  /// returning false; `ops` (when non-null) accumulates the distance tests
  /// performed, the work unit the virtual GPU's cost model charges for.
  template <typename Fn>
  void for_each_in_radius(const geom::Point& p, double radius, Fn&& fn,
                          std::uint64_t* ops = nullptr) const {
    const double r2 = radius * radius;
    const geom::CellKey c = geometry_.cell_of(p);
    const auto rings = static_cast<std::int32_t>(
        std::ceil(radius / geometry_.cell_size));
    std::uint64_t work = 0;
    bool stop = false;
    for (std::int32_t dy = -rings; dy <= rings && !stop; ++dy) {
      for (std::int32_t dx = -rings; dx <= rings && !stop; ++dx) {
        for (std::uint32_t idx :
             points_in(geom::CellKey{c.ix + dx, c.iy + dy})) {
          ++work;
          if (geom::dist2(p, points_[idx]) > r2) continue;
          if constexpr (std::is_void_v<
                            std::invoke_result_t<Fn&, std::uint32_t>>) {
            fn(idx);
          } else {
            if (!fn(idx)) {
              stop = true;
              break;
            }
          }
        }
      }
    }
    if (ops) *ops += work;
  }

  /// Eps-neighbourhood size of p, with early exit once `at_least` neighbours
  /// are seen (0 = count all). The point itself counts as its own neighbour
  /// when it is a member of the indexed set, matching classic DBSCAN.
  /// `ops` as in for_each_in_radius.
  std::size_t count_in_radius(const geom::Point& p, double radius,
                              std::size_t at_least = 0,
                              std::uint64_t* ops = nullptr) const;

  /// Collect neighbour indices into `scratch.results` (cleared first) and
  /// return them as a span, valid until the next query through `scratch`.
  /// Grid traversal needs no stack; the scratch supplies the reusable
  /// result buffer so the query path stays allocation-free once warm, the
  /// same engine contract as KDTree / RTree / BVH.
  std::span<const std::uint32_t> radius_query(
      const geom::Point& p, double radius, QueryScratch& scratch,
      std::uint64_t* ops = nullptr) const {
    auto& out = scratch.results;
    out.clear();
    for_each_in_radius(
        p, radius, [&](std::uint32_t idx) { out.push_back(idx); }, ops);
    return out;
  }

  /// Batched collection over point indices into the indexed span:
  /// fn(q, neighbors, ops) per query, in order; neighbors borrows
  /// scratch.results.
  template <typename Fn>
  void radius_query_many(std::span<const std::uint32_t> queries,
                         double radius, QueryScratch& scratch,
                         Fn&& fn) const {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      std::uint64_t ops = 0;
      const auto neighbors =
          radius_query(points_[queries[q]], radius, scratch, &ops);
      fn(q, neighbors, ops);
    }
  }

 private:
  std::size_t cell_slot(geom::CellKey key) const;  // npos when absent

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  geom::GridGeometry geometry_;
  std::span<const geom::Point> points_;
  std::vector<std::uint64_t> codes_;    // sorted cell codes
  std::vector<std::uint32_t> offsets_;  // size cells+1
  std::vector<std::uint32_t> order_;    // point indices grouped by cell
};

}  // namespace mrscan::index
