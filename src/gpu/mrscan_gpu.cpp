#include "gpu/mrscan_gpu.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

#include "gpu/dense_box.hpp"
#include "gpu/device_layout.hpp"
#include "index/kdtree.hpp"
#include "index/query_scratch.hpp"
#include "util/assert.hpp"
#include "util/union_find.hpp"

namespace mrscan::gpu {

namespace {

constexpr std::uint32_t kNoChain = 0xffffffffu;

/// Connect dense boxes that are mutually Eps-reachable. Two dense boxes
/// whose point sets contain an Eps-close pair belong to one cluster; since
/// dense points are never expanded, this link must be established
/// explicitly. Candidate pairs are found through a coarse hash grid over
/// box centres (boxes are at most (sqrt(2)/2) Eps wide, so Eps-reachable
/// boxes have centres within 2 Eps). Like the expansion passes, the kernel
/// spreads its distance computations across `block_count` blocks (one box
/// per block, round-robin) — charging everything to a single block made
/// dense-box-heavy runs misreport the simulated kernel time, which is the
/// max over blocks, not the sum.
void connect_dense_boxes(const index::KDTree& tree, const DenseBoxes& dense,
                         double eps, std::uint32_t block_count,
                         const std::vector<std::uint32_t>& box_chain,
                         util::UnionFind& chains, std::size_t& collisions,
                         VirtualDevice& device) {
  if (dense.count() < 2) return;
  const double cell = 2.0 * eps;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  auto bucket_of = [&](double x, double y) {
    const auto ix = static_cast<std::int32_t>(std::floor(x / cell));
    const auto iy = static_cast<std::int32_t>(std::floor(y / cell));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ix))
            << 32) |
           static_cast<std::uint32_t>(iy);
  };

  const auto leaves = tree.leaves();
  std::vector<std::pair<double, double>> centers(dense.count());
  for (std::uint32_t b = 0; b < dense.count(); ++b) {
    const auto& box = leaves[dense.leaf_ids[b]].box;
    centers[b] = {0.5 * (box.min_x + box.max_x),
                  0.5 * (box.min_y + box.max_y)};
    buckets[bucket_of(centers[b].first, centers[b].second)].push_back(b);
  }

  const double eps2 = eps * eps;
  std::vector<std::uint64_t> block_ops(block_count, 0);

  for (std::uint32_t a = 0; a < dense.count(); ++a) {
    const auto& leaf_a = leaves[dense.leaf_ids[a]];
    std::uint64_t& ops = block_ops[a % block_count];
    // Box min-distance prefilter bound, hoisted: inflate box a once per a,
    // not once per candidate pair.
    geom::BBox inflated = leaf_a.box;
    inflated.min_x -= eps;
    inflated.min_y -= eps;
    inflated.max_x += eps;
    inflated.max_y += eps;
    const auto base_ix =
        static_cast<std::int32_t>(std::floor(centers[a].first / cell));
    const auto base_iy =
        static_cast<std::int32_t>(std::floor(centers[a].second / cell));
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      for (std::int32_t dx = -1; dx <= 1; ++dx) {
        const std::uint64_t code =
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(base_ix + dx))
             << 32) |
            static_cast<std::uint32_t>(base_iy + dy);
        const auto it = buckets.find(code);
        if (it == buckets.end()) continue;
        for (const std::uint32_t b : it->second) {
          if (b <= a) continue;
          if (chains.same(box_chain[a], box_chain[b])) continue;
          const auto& leaf_b = leaves[dense.leaf_ids[b]];
          if (!inflated.intersects(leaf_b.box)) continue;
          // Cross check with early exit on the first Eps-close pair.
          bool linked = false;
          for (std::uint32_t i = leaf_a.begin; i < leaf_a.end && !linked;
               ++i) {
            const geom::Point& pa = tree.point_at(tree.order()[i]);
            for (std::uint32_t j = leaf_b.begin; j < leaf_b.end; ++j) {
              ++ops;
              if (geom::dist2(pa, tree.point_at(tree.order()[j])) <= eps2) {
                linked = true;
                break;
              }
            }
          }
          if (linked) {
            chains.unite(box_chain[a], box_chain[b]);
            ++collisions;
          }
        }
      }
    }
  }
  device.account_launch(block_ops);
}

}  // namespace

GpuDbscanResult mrscan_gpu_dbscan(std::span<const geom::Point> points,
                                  const MrScanGpuConfig& config,
                                  VirtualDevice& device) {
  MRSCAN_REQUIRE(config.params.eps > 0.0);
  MRSCAN_REQUIRE(config.params.min_pts >= 1);
  MRSCAN_REQUIRE(config.block_count >= 1);
  MRSCAN_REQUIRE(config.points_per_block >= 1);

  const std::size_t n = points.size();
  GpuDbscanResult result;
  result.labels.cluster.assign(n, dbscan::kNoise);
  result.labels.core.assign(n, 0);
  DeviceStatsDelta delta(device);
  if (n == 0) {
    delta.fill(result.stats);
    return result;
  }

  // One H2D copy: raw input points (and the KD-tree built over them).
  index::KDTree tree(
      points,
      index::KDTreeConfig{config.max_leaf_points,
                          config.dense_box
                              ? dense_box_side(config.params.eps)
                              : 0.0});
  device.copy_to_device(n * kPointBytes + tree.node_count() * kTreeNodeBytes);

  // One scratch for the whole clustering: this function runs single-
  // threaded within its leaf task, so every pass below reuses the same
  // traversal stack and result buffer — zero allocations once warm.
  index::QueryScratch scratch;

  // Dense box detection: one O(leaves) kernel.
  DenseBoxes dense;
  if (config.dense_box) {
    dense = detect_dense_boxes(tree, config.params.eps,
                               config.params.min_pts);
    device.account_launch({tree.leaves().size()});
  } else {
    dense.box_of_point.assign(n, DenseBoxes::kNone);
  }
  result.stats.dense_boxes = dense.count();
  result.stats.dense_points = dense.covered_points;

  util::UnionFind chains;
  std::vector<std::uint32_t> chain(n, kNoChain);

  // Every dense box is a pre-formed chain; its points are core by
  // construction and are never expanded (§3.2.3).
  std::vector<std::uint32_t> box_chain(dense.count());
  for (std::uint32_t b = 0; b < dense.count(); ++b) {
    box_chain[b] = chains.add();
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (dense.is_dense(i)) {
      chain[i] = box_chain[dense.box_of_point[i]];
      result.labels.core[i] = 1;
    }
  }

  std::vector<std::uint64_t> block_ops;

  // ---- Pass 1: core classification, kernels issued in bulk. ----
  // Each launch covers block_count x points_per_block points; the seed for
  // each block is a function of the kernel call parameters, so no memory
  // copies intervene (§3.2.2). Expansion stops as soon as MinPts is seen.
  {
    std::vector<std::uint32_t> work;
    work.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!dense.is_dense(i)) work.push_back(i);
    }
    const std::size_t wave_size =
        static_cast<std::size_t>(config.block_count) *
        config.points_per_block;
    std::size_t cursor = 0;
    while (cursor < work.size()) {
      const std::size_t batch = std::min(wave_size, work.size() - cursor);
      const auto wave = std::span<const std::uint32_t>(work)
                            .subspan(cursor, batch);
      block_ops.assign(config.block_count, 0);
      tree.count_in_radius_many(
          wave, config.params.eps, config.params.min_pts, scratch,
          [&](std::size_t q, std::size_t found, std::uint64_t ops) {
            // Same work distribution as the per-block loop this replaces:
            // the first points_per_block queries belong to block 0, etc.
            block_ops[q / config.points_per_block] += ops;
            if (found >= config.params.min_pts) {
              result.labels.core[wave[q]] = 1;
            }
          });
      device.account_launch(block_ops);
      cursor += batch;
    }
  }

  // ---- Pass 2: expand core points with block chains + collisions. ----
  {
    std::vector<std::deque<std::uint32_t>> queues(config.block_count);
    std::uint32_t next_seed = 0;
    std::vector<std::uint32_t> wave_points;  // one queue front per block
    std::vector<std::uint32_t> wave_blocks;  // its owning block

    auto seed_idle_blocks = [&]() {
      bool any = false;
      for (auto& q : queues) {
        if (q.empty()) {
          while (next_seed < n &&
                 (!result.labels.core[next_seed] ||
                  chain[next_seed] != kNoChain)) {
            ++next_seed;
          }
          if (next_seed < n) {
            chain[next_seed] = chains.add();
            q.push_back(next_seed);
            ++next_seed;
          }
        }
        if (!q.empty()) any = true;
      }
      return any;
    };

    while (seed_idle_blocks()) {
      // One bulk-issued kernel wave: each block expands one core point.
      // No host copies between waves — that is the point of the redesign.
      // Queue fronts are popped before the batch runs; a block's expansion
      // only ever pushes to its own queue, so the wave composition and the
      // per-block processing order are identical to the per-block loop.
      block_ops.assign(config.block_count, 0);
      wave_points.clear();
      wave_blocks.clear();
      for (std::uint32_t b = 0; b < config.block_count; ++b) {
        if (queues[b].empty()) continue;
        wave_points.push_back(queues[b].front());
        queues[b].pop_front();
        wave_blocks.push_back(b);
      }
      tree.radius_query_many(
          wave_points, config.params.eps, scratch,
          [&](std::size_t k, std::span<const std::uint32_t> neighbors,
              std::uint64_t ops) {
            const std::uint32_t b = wave_blocks[k];
            block_ops[b] += ops;
            const std::uint32_t p = wave_points[k];
            const std::uint32_t c = chain[p];
            for (const std::uint32_t q : neighbors) {
              if (q == p || !result.labels.core[q]) continue;
              if (chain[q] == kNoChain) {
                chain[q] = c;
                queues[b].push_back(q);
              } else if (!chains.same(c, chain[q])) {
                chains.unite(c, chain[q]);
                ++result.stats.collisions;
              }
            }
          });
      device.account_launch(block_ops);
    }
  }

  // Dense boxes adjacent to each other merge even though none of their
  // points ran an expansion.
  if (dense.count() >= 2) {
    connect_dense_boxes(tree, dense, config.params.eps, config.block_count,
                        box_chain, chains, result.stats.collisions, device);
  }

  // ---- Border pass: attach non-core points to a neighbouring core's
  // cluster (lowest core index wins — a deterministic DBSCAN tie-break).
  {
    std::vector<std::uint32_t> border;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!result.labels.core[i]) border.push_back(i);
    }
    block_ops.assign(config.block_count, 0);
    tree.radius_query_many(
        border, config.params.eps, scratch,
        [&](std::size_t k, std::span<const std::uint32_t> neighbors,
            std::uint64_t ops) {
          // Round-robin block assignment, as the rr counter did.
          block_ops[k % config.block_count] += ops;
          std::uint32_t best = kNoChain;
          for (const std::uint32_t q : neighbors) {
            if (result.labels.core[q] && q < best) best = q;
          }
          if (best != kNoChain) chain[border[k]] = chain[best];
        });
    device.account_launch(block_ops);
  }

  // One D2H copy: the clustered result.
  device.copy_to_host(n * kLabelBytes);

  for (std::uint32_t i = 0; i < n; ++i) {
    if (chain[i] == kNoChain) {
      result.labels.cluster[i] = dbscan::kNoise;
    } else {
      result.labels.cluster[i] =
          static_cast<dbscan::ClusterId>(chains.find(chain[i]));
    }
  }
  result.labels.renumber();

  result.stats.chains = chains.size();
  delta.fill(result.stats);
  return result;
}

}  // namespace mrscan::gpu
