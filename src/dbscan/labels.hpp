// Common label types shared by every DBSCAN implementation in the repo.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mrscan::dbscan {

/// Cluster label per point. Non-negative values are cluster ids.
using ClusterId = std::int64_t;

inline constexpr ClusterId kNoise = -1;
inline constexpr ClusterId kUnclassified = -2;

/// DBSCAN parameters (§2.1).
struct DbscanParams {
  double eps = 1.0;
  std::size_t min_pts = 4;  // includes the point itself, as in Ester et al.
};

/// Result of clustering n points: per-point cluster labels and core flags,
/// indexed in the order of the input span.
struct Labeling {
  std::vector<ClusterId> cluster;
  std::vector<std::uint8_t> core;

  std::size_t size() const { return cluster.size(); }

  /// Number of distinct non-noise clusters.
  std::size_t cluster_count() const;

  /// Number of noise points.
  std::size_t noise_count() const;

  /// Remap cluster ids to 0..k-1 in order of first appearance; noise and
  /// unclassified labels are preserved.
  void renumber();
};

}  // namespace mrscan::dbscan
