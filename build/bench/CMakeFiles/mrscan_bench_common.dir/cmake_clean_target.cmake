file(REMOVE_RECURSE
  "libmrscan_bench_common.a"
)
