#include "io/segment_file.hpp"

#include <fstream>
#include <stdexcept>

#include "io/point_file.hpp"

namespace mrscan::io {

namespace {
std::filesystem::path data_path(const std::filesystem::path& base) {
  auto p = base;
  p += ".pts";
  return p;
}
std::filesystem::path meta_path(const std::filesystem::path& base) {
  auto p = base;
  p += ".meta";
  return p;
}
}  // namespace

void write_segmented(const std::filesystem::path& base,
                     const std::vector<Segment>& segments) {
  geom::PointSet all;
  std::vector<SegmentMeta> metas;
  metas.reserve(segments.size());
  std::uint64_t cursor = 0;
  for (const Segment& seg : segments) {
    SegmentMeta meta;
    meta.first_record = cursor;
    meta.owned_count = seg.owned.size();
    meta.shadow_count = seg.shadow.size();
    metas.push_back(meta);
    all.insert(all.end(), seg.owned.begin(), seg.owned.end());
    all.insert(all.end(), seg.shadow.begin(), seg.shadow.end());
    cursor += meta.total();
  }
  write_points_binary(data_path(base), all);

  std::ofstream out(meta_path(base), std::ios::trunc);
  if (!out) {
    throw std::runtime_error("mrscan: cannot write metadata: " +
                             meta_path(base).string());
  }
  out << metas.size() << '\n';
  for (const SegmentMeta& m : metas) {
    out << m.first_record << ' ' << m.owned_count << ' ' << m.shadow_count
        << '\n';
  }
}

std::vector<SegmentMeta> read_segment_meta(
    const std::filesystem::path& base) {
  std::ifstream in(meta_path(base));
  if (!in) {
    throw std::runtime_error("mrscan: cannot read metadata: " +
                             meta_path(base).string());
  }
  std::size_t count = 0;
  in >> count;
  std::vector<SegmentMeta> metas(count);
  for (SegmentMeta& m : metas) {
    in >> m.first_record >> m.owned_count >> m.shadow_count;
  }
  if (!in) {
    throw std::runtime_error("mrscan: malformed metadata: " +
                             meta_path(base).string());
  }
  return metas;
}

Segment read_segment(const std::filesystem::path& base,
                     const SegmentMeta& meta) {
  Segment seg;
  seg.owned = read_points_binary_range(data_path(base), meta.first_record,
                                       meta.owned_count);
  seg.shadow = read_points_binary_range(
      data_path(base), meta.first_record + meta.owned_count,
      meta.shadow_count);
  return seg;
}

}  // namespace mrscan::io
