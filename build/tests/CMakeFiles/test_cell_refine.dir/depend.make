# Empty dependencies file for test_cell_refine.
# This may be replaced when dependencies are built.
