#include "index/cell_histogram.hpp"

#include <algorithm>

namespace mrscan::index {

CellHistogram::CellHistogram(const geom::GridGeometry& geometry,
                             std::span<const geom::Point> points) {
  entries_.reserve(points.size() / 4 + 1);
  for (const geom::Point& p : points) {
    entries_.push_back(Entry{geom::cell_code(geometry.cell_of(p)), 1});
  }
  normalize();
}

CellHistogram::CellHistogram(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  normalize();
}

void CellHistogram::normalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.code < b.code; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].code == entries_[i].code) {
      entries_[out - 1].count += entries_[i].count;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

void CellHistogram::merge(const CellHistogram& other) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].code < other.entries_[j].code) {
      merged.push_back(entries_[i++]);
    } else if (entries_[i].code > other.entries_[j].code) {
      merged.push_back(other.entries_[j++]);
    } else {
      merged.push_back(
          Entry{entries_[i].code, entries_[i].count + other.entries_[j].count});
      ++i;
      ++j;
    }
  }
  while (i < entries_.size()) merged.push_back(entries_[i++]);
  while (j < other.entries_.size()) merged.push_back(other.entries_[j++]);
  entries_ = std::move(merged);
}

void CellHistogram::add(geom::CellKey key, std::uint64_t count) {
  if (count == 0) return;
  const std::uint64_t code = geom::cell_code(key);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), code,
      [](const Entry& e, std::uint64_t c) { return e.code < c; });
  if (it != entries_.end() && it->code == code) {
    it->count += count;
  } else {
    entries_.insert(it, Entry{code, count});
  }
}

std::uint64_t CellHistogram::total_points() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.count;
  return total;
}

std::uint64_t CellHistogram::count_of(geom::CellKey key) const {
  const std::uint64_t code = geom::cell_code(key);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), code,
      [](const Entry& e, std::uint64_t c) { return e.code < c; });
  if (it == entries_.end() || it->code != code) return 0;
  return it->count;
}

std::uint64_t CellHistogram::max_cell_count() const {
  std::uint64_t best = 0;
  for (const Entry& e : entries_) best = std::max(best, e.count);
  return best;
}

}  // namespace mrscan::index
