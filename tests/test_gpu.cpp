#include <gtest/gtest.h>

#include <map>

#include "data/synthetic.hpp"
#include "data/twitter.hpp"
#include "dbscan/sequential.hpp"
#include "gpu/cuda_dclust.hpp"
#include "gpu/dense_box.hpp"
#include "gpu/device.hpp"
#include "gpu/mrscan_gpu.hpp"
#include "quality/dbdc.hpp"
#include "util/rng.hpp"

namespace mg = mrscan::geom;
namespace md = mrscan::dbscan;
namespace gpu = mrscan::gpu;

namespace {

mg::PointSet blob_data(std::uint64_t seed = 42) {
  std::vector<mrscan::data::Blob> blobs{
      {0.0, 0.0, 0.3, 400}, {10.0, 10.0, 0.3, 400}, {0.0, 10.0, 0.2, 200}};
  return mrscan::data::gaussian_blobs(
      blobs, 100, mg::BBox{-5.0, -5.0, 15.0, 15.0}, seed);
}

/// Clusters-as-partition equivalence over core points only (border ties
/// are order-dependent in any DBSCAN, so they are compared via DBDC).
void expect_same_core_partition(const md::Labeling& a, const md::Labeling& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.core, b.core);
  std::map<md::ClusterId, md::ClusterId> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.core[i]) continue;
    ASSERT_GE(a.cluster[i], 0) << "core point not clustered (a) at " << i;
    ASSERT_GE(b.cluster[i], 0) << "core point not clustered (b) at " << i;
    auto [fit, fnew] = fwd.emplace(a.cluster[i], b.cluster[i]);
    EXPECT_EQ(fit->second, b.cluster[i]) << "split cluster at point " << i;
    auto [bit, bnew] = bwd.emplace(b.cluster[i], a.cluster[i]);
    EXPECT_EQ(bit->second, a.cluster[i]) << "merged cluster at point " << i;
  }
}

}  // namespace

TEST(VirtualDevice, TransfersAccumulateTimeAndBytes) {
  gpu::VirtualDevice device;
  device.copy_to_device(6'000'000'000ULL);  // 1 second at 6 GB/s
  EXPECT_NEAR(device.stats().transfer_seconds, 1.0,
              0.01);  // latency is negligible here
  device.copy_to_host(100);
  EXPECT_EQ(device.stats().h2d_transfers, 1u);
  EXPECT_EQ(device.stats().d2h_transfers, 1u);
  EXPECT_EQ(device.stats().h2d_bytes, 6'000'000'000ULL);
}

TEST(VirtualDevice, LaunchSchedulesBlocksOntoSms) {
  gpu::DeviceSpec spec;
  spec.sm_count = 2;
  spec.block_op_rate = 1000.0;
  spec.kernel_launch_overhead_s = 0.0;
  gpu::VirtualDevice device(spec);
  // 3 blocks of 1000 ops on 2 SMs -> two waves -> 2 seconds.
  device.launch(3, [](gpu::VirtualDevice::BlockContext& ctx) {
    ctx.charge(1000);
  });
  EXPECT_NEAR(device.stats().kernel_seconds, 2.0, 1e-9);
  EXPECT_EQ(device.stats().total_ops, 3000u);
  EXPECT_EQ(device.stats().blocks_executed, 3u);
}

TEST(VirtualDevice, StragglerBlockDominatesKernelTime) {
  gpu::DeviceSpec spec;
  spec.sm_count = 4;
  spec.block_op_rate = 1000.0;
  spec.kernel_launch_overhead_s = 0.0;
  gpu::VirtualDevice device(spec);
  // One block with 10x the work of the others stalls the kernel — the
  // load-imbalance effect dense boxes exist to fix.
  device.account_launch({10000, 1000, 1000, 1000});
  EXPECT_NEAR(device.stats().kernel_seconds, 10.0, 1e-9);
}

TEST(DenseBox, DetectsDenseLeafAndCoversPoints) {
  // 500 points crammed into a tiny square, eps chosen so the square fits
  // the (sqrt(2)/2) * eps bound.
  const auto pts = mrscan::data::uniform_points(
      500, mg::BBox{0.0, 0.0, 0.05, 0.05}, 5);
  const double eps = 0.1;
  mrscan::index::KDTree tree(
      pts, mrscan::index::KDTreeConfig{64, gpu::dense_box_side(eps)});
  const auto dense = gpu::detect_dense_boxes(tree, eps, 10);
  ASSERT_EQ(dense.count(), 1u);
  EXPECT_EQ(dense.covered_points, 500u);
  for (std::uint32_t i = 0; i < 500; ++i) EXPECT_TRUE(dense.is_dense(i));
}

TEST(DenseBox, SparseDataHasNoDenseBoxes) {
  const auto pts = mrscan::data::uniform_points(
      300, mg::BBox{0.0, 0.0, 100.0, 100.0}, 6);
  const double eps = 0.1;
  mrscan::index::KDTree tree(
      pts, mrscan::index::KDTreeConfig{64, gpu::dense_box_side(eps)});
  const auto dense = gpu::detect_dense_boxes(tree, eps, 4);
  EXPECT_EQ(dense.count(), 0u);
  EXPECT_EQ(dense.covered_points, 0u);
}

TEST(DenseBox, DensePointsAreTrulyCore) {
  // Every dense-box point must be a genuine DBSCAN core point.
  const auto pts = blob_data();
  const md::DbscanParams params{0.3, 10};
  mrscan::index::KDTree tree(
      pts, mrscan::index::KDTreeConfig{64, gpu::dense_box_side(params.eps)});
  const auto dense = gpu::detect_dense_boxes(tree, params.eps, params.min_pts);
  const auto ref = md::dbscan_sequential(pts, params);
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (dense.is_dense(i)) {
      EXPECT_TRUE(ref.core[i]) << "dense point " << i << " is not core";
    }
  }
}

TEST(MrScanGpu, MatchesSequentialCoreStructureOnBlobs) {
  const auto pts = blob_data();
  const md::DbscanParams params{0.3, 4};
  const auto ref = md::dbscan_sequential(pts, params);
  gpu::VirtualDevice device;
  gpu::MrScanGpuConfig config;
  config.params = params;
  const auto got = gpu::mrscan_gpu_dbscan(pts, config, device);
  expect_same_core_partition(ref, got.labels);
  EXPECT_EQ(ref.cluster_count(), got.labels.cluster_count());
}

TEST(MrScanGpu, HighQualityVersusSequentialAcrossMinPts) {
  const auto pts = blob_data(7);
  for (const std::size_t min_pts : {4UL, 10UL, 40UL}) {
    const md::DbscanParams params{0.3, min_pts};
    const auto ref = md::dbscan_sequential(pts, params);
    gpu::VirtualDevice device;
    gpu::MrScanGpuConfig config;
    config.params = params;
    const auto got = gpu::mrscan_gpu_dbscan(pts, config, device);
    const double q =
        mrscan::quality::dbdc_quality(ref.cluster, got.labels.cluster);
    EXPECT_GT(q, 0.995) << "min_pts=" << min_pts;
  }
}

TEST(MrScanGpu, DenseBoxOffStillCorrect) {
  const auto pts = blob_data(9);
  const md::DbscanParams params{0.3, 4};
  const auto ref = md::dbscan_sequential(pts, params);
  gpu::VirtualDevice device;
  gpu::MrScanGpuConfig config;
  config.params = params;
  config.dense_box = false;
  const auto got = gpu::mrscan_gpu_dbscan(pts, config, device);
  expect_same_core_partition(ref, got.labels);
  EXPECT_EQ(got.stats.dense_boxes, 0u);
}

TEST(MrScanGpu, DenseBoxReducesDistanceOps) {
  // Dense data: the optimisation must eliminate points and reduce work.
  mrscan::data::TwitterConfig tw;
  tw.num_points = 20000;
  const auto pts = mrscan::data::generate_twitter(tw);
  const md::DbscanParams params{0.1, 40};

  gpu::MrScanGpuConfig config;
  config.params = params;

  gpu::VirtualDevice dev_on;
  const auto with_box = gpu::mrscan_gpu_dbscan(pts, config, dev_on);

  config.dense_box = false;
  gpu::VirtualDevice dev_off;
  const auto without_box = gpu::mrscan_gpu_dbscan(pts, config, dev_off);

  EXPECT_GT(with_box.stats.dense_points, 500u);
  EXPECT_LT(with_box.stats.distance_ops, without_box.stats.distance_ops);
  EXPECT_LT(with_box.stats.device_seconds, without_box.stats.device_seconds);
  // And both produce the same clustering quality vs the reference.
  const auto ref = md::dbscan_sequential(pts, params);
  EXPECT_GT(mrscan::quality::dbdc_quality(ref.cluster,
                                          with_box.labels.cluster),
            0.99);
}

TEST(MrScanGpu, SingleRoundTripTransfers) {
  const auto pts = blob_data(11);
  gpu::VirtualDevice device;
  gpu::MrScanGpuConfig config;
  config.params = {0.3, 4};
  const auto got = gpu::mrscan_gpu_dbscan(pts, config, device);
  // One input copy down, one result copy up — independent of point count.
  EXPECT_EQ(got.stats.h2d_transfers, 1u);
  EXPECT_EQ(got.stats.d2h_transfers, 1u);
}

TEST(MrScanGpu, EmptyAndTinyInputs) {
  gpu::VirtualDevice device;
  gpu::MrScanGpuConfig config;
  config.params = {1.0, 3};
  const auto empty = gpu::mrscan_gpu_dbscan({}, config, device);
  EXPECT_EQ(empty.labels.size(), 0u);

  mg::PointSet two{{0, 0.0, 0.0, 1.0f}, {1, 0.5, 0.0, 1.0f}};
  const auto tiny = gpu::mrscan_gpu_dbscan(two, config, device);
  EXPECT_EQ(tiny.labels.cluster[0], md::kNoise);
  EXPECT_EQ(tiny.labels.cluster[1], md::kNoise);
}

TEST(MrScanGpu, AdjacentDenseBoxesMergeIntoOneCluster) {
  // Two tight clumps within eps of each other but each fitting in its own
  // dense box: without the dense-box connectivity step they would wrongly
  // be two clusters.
  mg::PointSet pts;
  mg::PointId id = 0;
  mrscan::util::Rng rng(3);
  for (int c = 0; c < 2; ++c) {
    const double cx = c * 0.08;  // gap below eps
    for (int i = 0; i < 100; ++i) {
      pts.push_back({id++, cx + rng.uniform(0.0, 0.02),
                     rng.uniform(0.0, 0.02), 1.0f});
    }
  }
  const md::DbscanParams params{0.1, 20};
  gpu::VirtualDevice device;
  gpu::MrScanGpuConfig config;
  config.params = params;
  config.max_leaf_points = 32;  // force the clumps into separate leaves
  const auto got = gpu::mrscan_gpu_dbscan(pts, config, device);
  EXPECT_GE(got.stats.dense_boxes, 2u);
  EXPECT_EQ(got.labels.cluster_count(), 1u);
  const auto ref = md::dbscan_sequential(pts, params);
  EXPECT_EQ(ref.cluster_count(), 1u);
}

TEST(CudaDClust, MatchesSequentialOnBlobs) {
  const auto pts = blob_data(13);
  const md::DbscanParams params{0.3, 4};
  const auto ref = md::dbscan_sequential(pts, params);
  gpu::VirtualDevice device;
  gpu::CudaDClustConfig config;
  config.params = params;
  const auto got = gpu::cuda_dclust(pts, config, device);
  EXPECT_EQ(ref.core, got.labels.core);
  EXPECT_EQ(ref.cluster_count(), got.labels.cluster_count());
  const double q =
      mrscan::quality::dbdc_quality(ref.cluster, got.labels.cluster);
  EXPECT_GT(q, 0.98);  // queued-point collisions allow slight divergence
}

TEST(CudaDClust, PerIterationCopiesScaleWithPoints) {
  // The flaw Mr. Scan fixes: copies grow with points / blockCount.
  const auto pts = blob_data(17);
  gpu::VirtualDevice device;
  gpu::CudaDClustConfig config;
  config.params = {0.3, 4};
  config.block_count = 16;
  const auto got = gpu::cuda_dclust(pts, config, device);
  const std::uint64_t copies =
      got.stats.h2d_transfers + got.stats.d2h_transfers;
  // At least 2 x (points / blockCount) copies (one H2D + one D2H per
  // iteration; expansion adds iterations beyond the seed count).
  EXPECT_GE(copies, 2 * pts.size() / config.block_count);
}

TEST(CudaDClust, MrScanNeedsFarFewerTransfers) {
  const auto pts = blob_data(19);
  const md::DbscanParams params{0.3, 4};

  gpu::VirtualDevice dev_a;
  gpu::CudaDClustConfig dclust;
  dclust.params = params;
  const auto base = gpu::cuda_dclust(pts, dclust, dev_a);

  gpu::VirtualDevice dev_b;
  gpu::MrScanGpuConfig mrscan;
  mrscan.params = params;
  const auto ours = gpu::mrscan_gpu_dbscan(pts, mrscan, dev_b);

  EXPECT_LT(ours.stats.h2d_transfers + ours.stats.d2h_transfers,
            (base.stats.h2d_transfers + base.stats.d2h_transfers) / 10);
}

TEST(CudaDClust, UniformNoiseAllNoise) {
  const auto pts = mrscan::data::uniform_points(
      300, mg::BBox{0.0, 0.0, 100.0, 100.0}, 21);
  gpu::VirtualDevice device;
  gpu::CudaDClustConfig config;
  config.params = {0.5, 5};
  const auto got = gpu::cuda_dclust(pts, config, device);
  EXPECT_EQ(got.labels.cluster_count(), 0u);
  EXPECT_EQ(got.labels.noise_count(), pts.size());
}
