# Empty dependencies file for mrscan_sim.
# This may be replaced when dependencies are built.
