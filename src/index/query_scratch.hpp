// Caller-owned scratch for the neighbor-query engine.
//
// Every Eps-neighbourhood query needs two pieces of transient storage: a
// traversal stack (node ids still to visit) and a result buffer (neighbor
// indices). Allocating them inside the query — as the first version of
// KDTree::radius_query did — puts a heap allocation on the hottest path of
// the whole pipeline: one per point per pass of the cluster phase. A
// QueryScratch owns both buffers across calls, so after a warm-up query
// the steady-state query path performs zero heap allocations (asserted by
// tests/test_query_alloc.cpp with an instrumented allocator).
//
// Ownership / threading model (DESIGN §10): the CALLER allocates the
// scratch and keeps it alive across queries; the index only borrows it for
// the duration of one call. A scratch is not thread-safe and must not be
// shared between host workers — under host_threads > 1 each worker (each
// leaf task in the cluster phase) owns its own scratch. Scratch contents
// never influence query results, only where they are materialised, so the
// bit-identical-output determinism contract is unaffected.
#pragma once

#include <cstdint>
#include <vector>

namespace mrscan::index {

struct QueryScratch {
  /// Node ids still to visit (KD-tree / R-tree traversal).
  std::vector<std::uint32_t> stack;
  /// Neighbor indices of the most recent collecting query. Valid until the
  /// next query through the same scratch.
  std::vector<std::uint32_t> results;

  /// Pre-size both buffers so even the first query avoids reallocation.
  void reserve(std::size_t stack_hint, std::size_t result_hint) {
    stack.reserve(stack_hint);
    results.reserve(result_hint);
  }
};

}  // namespace mrscan::index
