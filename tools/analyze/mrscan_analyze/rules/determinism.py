"""Determinism family: iteration over unordered containers.

The pipeline's contract (DESIGN §8) is bit-identical output for any
host_threads; the obs contract (DESIGN §9) is byte-stable snapshots.
Hash-map iteration order is unspecified, varies across libcs, and —
for containers filled by workers — across runs, so any range-for (or
.begin() walk) over a std::unordered_{map,set,multimap,multiset} in
src/ must either be rewritten over sorted keys or annotated with
// det-unordered-iter-ok: <why the use is order-independent>.

Detection is scope-aware: the rule tracks declarations (locals,
members, parameters) whose type names an unordered container and flags
loops whose range expression resolves to one of them, plus direct
iterator walks via .begin().
"""

from __future__ import annotations

from ..context import FileContext
from ..lexer import IDENT, PUNCT, match_paren

_UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset")


def _is_unordered_type(type_text: str) -> bool:
    return any(u in type_text for u in _UNORDERED)


def _range_expr_head(tokens, start: int, end: int) -> str | None:
    """The variable a range-for expression iterates, for simple shapes:
    `name`, `obj.name`, `obj->name`, `ns::name`, `name[i]` — the last
    plain identifier before an optional subscript/member chain end."""
    # A call in the range expression (e.g. `items()`) is out of scope
    # except for the trivial `x.begin()` style handled elsewhere.
    for k in range(start, end):
        if tokens[k].kind == PUNCT and tokens[k].text == "(":
            return None
    # Strip trailing subscripts so `buckets[ci]` resolves to `buckets`
    # (a vector-of-unordered-maps indexes like this).
    while end > start and tokens[end - 1].kind == PUNCT \
            and tokens[end - 1].text == "]":
        depth = 0
        k = end - 1
        while k >= start:
            tok = tokens[k]
            if tok.kind == PUNCT and tok.text == "]":
                depth += 1
            elif tok.kind == PUNCT and tok.text == "[":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        if k < start:
            break
        end = k
    idents = [t for t in tokens[start:end]
              if t.kind == IDENT]
    if not idents:
        return None
    return idents[-1].text


def check_unordered_iteration(ctx: FileContext) -> None:
    code = ctx.code
    decls = ctx.declarations(_is_unordered_type)
    if not decls:
        # Still catch `for (auto& x : std::unordered_map<...>{...})` —
        # no named declaration involved (rare; fixtures cover it).
        decls = []
    names: dict[str, list[int]] = {}
    for d in decls:
        names.setdefault(d.name, []).append(d.token_index)
    n = len(code)

    def declared_before(name: str, index: int) -> bool:
        return any(di < index for di in names.get(name, ()))

    for i, t in enumerate(code):
        if t.kind == IDENT and t.text == "for" and i + 1 < n \
                and code[i + 1].kind == PUNCT and code[i + 1].text == "(":
            close = match_paren(code, i + 1)
            if close >= n:
                continue
            # Find the range-for ':' at paren depth 1 ('::' is one token).
            colon = -1
            depth = 0
            for k in range(i + 1, close):
                tok = code[k]
                if tok.kind != PUNCT:
                    continue
                if tok.text in "([{":
                    depth += 1
                elif tok.text in ")]}":
                    depth -= 1
                elif tok.text == ":" and depth == 1:
                    colon = k
                    break
                elif tok.text == ";" and depth == 1:
                    break  # classic for, not range-for
            if colon < 0:
                continue
            head = _range_expr_head(code, colon + 1, close)
            if head is None:
                # Direct temporary: std::unordered_map<...>{...}.
                expr_text = "".join(tok.text
                                    for tok in code[colon + 1:close])
                if _is_unordered_type(expr_text):
                    ctx.report(
                        t.line, "det-unordered-iter",
                        "range-for over an unordered container "
                        "temporary; iteration order is unspecified")
                continue
            if declared_before(head, colon):
                ctx.report(
                    t.line, "det-unordered-iter",
                    f"range-for over unordered container '{head}'; "
                    "iterate sorted keys (or annotate with "
                    "// det-unordered-iter-ok: <reason> if the fold is "
                    "order-independent)")
            continue
        # Iterator-style walks: name.begin() (covers assign/copy/ctor
        # range forms as well as explicit iterator loops).
        if (t.kind == IDENT and t.text in ("begin", "cbegin")
                and i >= 2 and i + 1 < n
                and code[i + 1].kind == PUNCT and code[i + 1].text == "("
                and code[i - 1].kind == PUNCT and code[i - 1].text in (
                    ".", "->")
                and code[i - 2].kind == IDENT):
            owner = code[i - 2].text
            if declared_before(owner, i):
                ctx.report(
                    t.line, "det-unordered-iter",
                    f"iterator walk over unordered container '{owner}'; "
                    "order is unspecified — sort the result or annotate "
                    "with // det-unordered-iter-ok: <reason>")
