#!/usr/bin/env bash
# scripts/check.sh — run the full correctness-tooling matrix and fail on
# any report:
#
#   1. mrscan_analyze     semantic contract checker (determinism,
#                         concurrency, accounting, layering) over
#                         src/ bench/ examples/ tests/; findings JSON
#                         is written to build/analyze_findings.json
#   2. default preset     build + full test suite (tier-1 bar)
#   3. obs smoke          traced pipeline run; both JSON artifacts are
#                         schema-validated by tools/obs/check_obs_json.py
#   4. serve smoke        mrscan_cli --serve demo-stream replay; the
#                         serve.* metrics snapshot is schema-validated by
#                         tools/obs/check_obs_json.py --serve
#   5. ooc smoke          out-of-core mrscan_cli run (byte-identical to
#                         the resident reference) plus a kill/resume
#                         cycle; the ooc.* metrics snapshot is
#                         schema-validated by
#                         tools/obs/check_obs_json.py --ooc
#   6. bench smoke        short bench_micro_index + bench_micro_pipeline
#                         + bench_serve + bench_ooc runs with
#                         MRSCAN_BENCH_METRICS_DIR set; every emitted
#                         BENCH_*.json is schema-validated by
#                         tools/obs/check_obs_json.py --bench
#   7. asan-ubsan preset  full suite under ASan+UBSan with
#                         MRSCAN_CHECK_INVARIANTS=ON and MRSCAN_WERROR=ON
#   8. tsan preset        full suite (incl. the `stress`-labeled tests)
#                         under TSan, same options
#   9. tidy preset        clang-tidy over every TU (skipped with a notice
#                         when clang-tidy is not installed)
#
# Usage: scripts/check.sh [--quick] [--no-stress] [--coverage] [--jobs N]
#   --quick      analyze + default preset only (the fast pre-commit loop)
#   --no-stress  skip the `stress`-labeled tests in every preset (the
#                push/PR CI path; a scheduled job runs them)
#   --coverage   also build + test the `coverage` preset and gate line
#                coverage of src/gpu/ + src/cluster/ + src/index/ at 80%
#                with
#                tools/coverage/check_coverage.py; the summary JSON lands
#                in build-coverage/coverage_summary.json (CI uploads it)
#   --jobs N     parallelism for builds and ctest (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 2)
QUICK=0
NO_STRESS=0
COVERAGE=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --no-stress) NO_STRESS=1 ;;
    --coverage) COVERAGE=1 ;;
    --jobs) ;; # value handled below
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    [0-9]*) JOBS="$arg" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

bold() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }
FAILURES=()

run_step() {
  local name="$1"; shift
  bold "$name"
  if "$@"; then
    echo "-- $name: OK"
  else
    echo "-- $name: FAILED" >&2
    FAILURES+=("$name")
  fi
}

run_preset() {
  local preset="$1"
  run_step "configure:$preset" cmake --preset "$preset"
  run_step "build:$preset" cmake --build --preset "$preset" -j "$JOBS"
  local ctest_args=(--preset "$preset" -j "$JOBS")
  if [[ "$NO_STRESS" -eq 1 ]]; then
    ctest_args+=(-LE stress)
  fi
  # The tsan preset drives the phase loops with 4 host workers so the
  # race detector sees real concurrency and the differential battery
  # enforces the bit-identical-output determinism contract under it.
  if [[ "$preset" == "tsan" ]]; then
    run_step "test:$preset" \
      env "MRSCAN_HOST_THREADS=${MRSCAN_HOST_THREADS:-4}" \
      ctest "${ctest_args[@]}"
  else
    run_step "test:$preset" ctest "${ctest_args[@]}"
  fi
}

# The analyzer consumes build/compile_commands.json when a configure has
# already exported one; on a fresh checkout it falls back to scanning
# src/, so running it before the configure step is fine.
mkdir -p build
run_step "analyze" python3 tools/analyze/mrscan_analyze.py \
  --json build/analyze_findings.json

run_preset default

# Observability smoke: a traced demo run must produce a Perfetto-loadable
# Chrome trace and a valid metrics snapshot (and still cluster correctly).
obs_smoke() {
  ./build/examples/mrscan_cli --demo 5000 --eps 0.1 --minpts 40 \
    --host-threads 4 --output build/obs_smoke.clusters \
    --trace-out build/obs_trace.json --metrics-out build/obs_metrics.json \
    && python3 tools/obs/check_obs_json.py build/obs_trace.json \
         build/obs_metrics.json
}
run_step "obs-smoke" obs_smoke

# Serving-mode smoke: replay a seeded demo mutation stream through the
# long-lived ClusterService, then validate the serve.* metric series
# (epoch counter, live-set gauges, epoch/query latency histograms).
serve_smoke() {
  ./build/examples/mrscan_cli --serve --serve-demo 300 \
    --serve-initial 2000 --serve-epoch-every 50 --eps 0.05 --minpts 5 \
    --host-threads 4 --output build/serve_smoke.clusters \
    --metrics-out build/serve_metrics.json \
    && python3 tools/obs/check_obs_json.py --serve build/serve_metrics.json
}
run_step "serve-smoke" serve_smoke

# Out-of-core smoke: the streamed run must produce byte-identical cluster
# output to the resident reference and a valid ooc.* metrics snapshot;
# then a kill/resume cycle — the aborted run exits 3 right after a
# checkpoint, the resumed run restores the finished leaves and still
# matches the reference (DESIGN §15).
ooc_smoke() {
  local dir=build/ooc_smoke
  rm -rf "$dir" && mkdir -p "$dir" || return 1
  ./build/examples/mrscan_cli --demo 4000 --eps 0.1 --minpts 20 \
    --leaves 8 --host-threads 4 \
    --output "$dir/resident.clusters" >/dev/null || return 1
  ./build/examples/mrscan_cli --demo 4000 --eps 0.1 --minpts 20 \
    --leaves 8 --host-threads 4 --ooc-dir "$dir/spool" --working-set 2 \
    --output "$dir/ooc.clusters" \
    --metrics-out "$dir/ooc_metrics.json" >/dev/null || return 1
  python3 tools/obs/check_obs_json.py --ooc "$dir/ooc_metrics.json" \
    || return 1
  cmp "$dir/resident.clusters" "$dir/ooc.clusters" || return 1
  local rc=0
  ./build/examples/mrscan_cli --demo 4000 --eps 0.1 --minpts 20 \
    --leaves 8 --host-threads 4 --ooc-dir "$dir/spool2" --working-set 2 \
    --ooc-abort-after 3 --output "$dir/aborted.clusters" \
    >/dev/null 2>&1 || rc=$?
  if [[ "$rc" -ne 3 ]]; then
    echo "ooc-smoke: expected abort exit code 3, got $rc" >&2
    return 1
  fi
  ./build/examples/mrscan_cli --demo 4000 --eps 0.1 --minpts 20 \
    --leaves 8 --host-threads 4 --ooc-dir "$dir/spool2" --working-set 2 \
    --resume --output "$dir/resumed.clusters" >/dev/null || return 1
  cmp "$dir/resident.clusters" "$dir/resumed.clusters"
}
run_step "ooc-smoke" ooc_smoke

# Bench smoke: the micro benches must run, export BENCH_*.json metric
# files, and those files must validate. Tiny min_time / fixture sizes —
# this checks the machinery, not the numbers. (--benchmark_min_time takes
# a plain double with this google-benchmark version, not "0.05s".)
# The validated snapshots are copied to the repo root as the canonical
# BENCH_*.json artifacts (committed, so index-backend regressions show up
# in review diffs) — except BENCH_ooc_scale.json, whose committed copy
# carries the full 8,192-leaf numbers from a dedicated bench_ooc run; the
# smoke only validates that a tiny run still exports a clean file.
bench_smoke() {
  local dir=build/bench_metrics
  rm -rf "$dir" && mkdir -p "$dir" \
    && env MRSCAN_BENCH_METRICS_DIR="$dir" \
         ./build/bench/bench_micro_index \
         --benchmark_filter='BM_(KDTree|BVH)' --benchmark_min_time=0.05 \
    && env MRSCAN_BENCH_METRICS_DIR="$dir" MRSCAN_BENCH_MICRO_POINTS=20000 \
         ./build/bench/bench_micro_pipeline \
         --benchmark_filter='BM_ClusterPhase(HostThreads|CellGraph)/1' \
         --benchmark_min_time=0.05 \
    && env MRSCAN_BENCH_METRICS_DIR="$dir" MRSCAN_BENCH_SERVE_INITIAL=4000 \
         MRSCAN_BENCH_SERVE_MUTATIONS=64 \
         ./build/bench/bench_serve \
         --benchmark_filter='BM_ServeEpoch/(8|64)$' \
         --benchmark_min_time=0.05 \
    && env MRSCAN_BENCH_METRICS_DIR="$dir" MRSCAN_BENCH_OOC_LEAVES=16 \
         MRSCAN_BENCH_OOC_POINTS_PER_LEAF=100 MRSCAN_BENCH_OOC_FAT_LEAVES=8 \
         MRSCAN_BENCH_OOC_FAT_POINTS_PER_LEAF=500 \
         ./build/bench/bench_ooc \
    && python3 tools/obs/check_obs_json.py --bench "$dir"/BENCH_*.json \
    && rm "$dir"/BENCH_ooc_scale.json \
    && cp "$dir"/BENCH_*.json .
}
run_step "bench-smoke" bench_smoke

# Coverage gate: instrumented build + full suite, then the line-coverage
# check over the GPGPU cluster phase, the cell-graph module and the
# spatial index backends. Composes with --quick (the CI coverage job runs
# `--quick --coverage`).
if [[ "$COVERAGE" -eq 1 ]]; then
  run_preset coverage
  run_step "coverage-gate" python3 tools/coverage/check_coverage.py \
    --build-dir build-coverage --threshold 80 \
    --summary build-coverage/coverage_summary.json
fi

if [[ "$QUICK" -eq 0 ]]; then
  run_preset asan-ubsan
  run_preset tsan

  if command -v clang-tidy >/dev/null 2>&1; then
    run_step "configure:tidy" cmake --preset tidy
    run_step "build:tidy" cmake --build --preset tidy -j "$JOBS"
  else
    bold "tidy"
    echo "-- clang-tidy not installed; skipping the tidy preset" \
         "(install clang-tidy to enable)"
  fi
fi

bold "summary"
if [[ "${#FAILURES[@]}" -gt 0 ]]; then
  echo "check.sh: FAILED steps: ${FAILURES[*]}" >&2
  exit 1
fi
echo "check.sh: all steps passed"
