#!/usr/bin/env python3
"""Self-tests for mrscan_analyze.

Covers, per rule: a seeded-violation fixture is detected (positive) and
the rule's `// <rule>-ok:` suppression actually suppresses (negative) —
every `*_ok` fixture must be silent. The full fixture run is compared
against a golden findings JSON, the export is schema-validated, and the
baseline/lexer/include-graph machinery gets direct unit tests.

Run directly or via CTest (mrscan_analyze_selftest):
    python3 tools/analyze/tests/run_tests.py
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

from mrscan_analyze import (RULES, analyze, findings_to_json,  # noqa: E402
                            validate_findings_json)
from mrscan_analyze.baseline import Baseline  # noqa: E402
from mrscan_analyze.includes import build_include_graph  # noqa: E402
from mrscan_analyze.lexer import (COMMENT, IDENT, PP, STRING,  # noqa: E402
                                  tokenize)

FIXTURES = HERE / "fixtures"
GOLDEN = HERE / "golden.json"


def run_fixture_analysis(baseline_path=None):
    return analyze(FIXTURES, [FIXTURES / "src"],
                   baseline_path=baseline_path)


class GoldenTest(unittest.TestCase):
    """The fixture tree must produce exactly the golden findings."""

    def test_matches_golden(self):
        result = run_fixture_analysis()
        got = json.loads(findings_to_json(
            result.findings, checked_files=result.checked_files,
            rules=sorted(RULES)))
        want = json.loads(GOLDEN.read_text(encoding="utf-8"))
        self.assertEqual(want, got,
                         "fixture findings diverged from golden.json; "
                         "if the change is intentional, regenerate with "
                         "tools/analyze/mrscan_analyze.py --repo-root "
                         "tools/analyze/tests/fixtures src --no-baseline "
                         "--json tools/analyze/tests/golden.json")

    def test_every_rule_detects_its_seeded_violation(self):
        found_rules = {f.rule for f in run_fixture_analysis().findings}
        self.assertEqual(found_rules, set(RULES),
                         "every registered rule must fire on its fixture")

    def test_suppressed_fixtures_are_silent(self):
        """Negative half of the contract: `*_ok` fixtures carry the same
        violations plus suppressions (or live in exempt dirs) and must
        produce nothing."""
        silent_markers = ("_ok.cpp", "_ok.hpp", "_exempt.cpp",
                          "cycsup_a.hpp", "cycsup_b.hpp")
        noisy = [str(f) for f in run_fixture_analysis().findings
                 if f.file.endswith(silent_markers)]
        self.assertEqual(noisy, [])

    def test_legacy_aliases_suppress(self):
        findings = run_fixture_analysis().findings
        legacy_files = ("src/core/hygiene_ok.cpp",
                        "src/merge/phase_loop_ok.cpp")
        self.assertEqual(
            [str(f) for f in findings if f.file in legacy_files], [],
            "// raw-clock-ok: and // sequential-ok: must keep working")


class SchemaTest(unittest.TestCase):
    def test_export_validates(self):
        result = run_fixture_analysis()
        doc = json.loads(findings_to_json(
            result.findings, checked_files=result.checked_files,
            rules=sorted(RULES)))
        self.assertEqual(validate_findings_json(doc), [])

    def test_malformed_docs_rejected(self):
        self.assertTrue(validate_findings_json([]))  # not an object
        self.assertTrue(validate_findings_json({"schema": "wrong"}))
        bad_line = {"schema": "mrscan-analyze-findings-v1",
                    "checked_files": 1, "rules": ["r"],
                    "findings": [{"rule": "r", "file": "f", "line": 0,
                                  "message": "m", "snippet": "",
                                  "baselined": False}]}
        self.assertTrue(any("line" in p
                            for p in validate_findings_json(bad_line)))
        unknown_rule = {"schema": "mrscan-analyze-findings-v1",
                        "checked_files": 1, "rules": ["r"],
                        "findings": [{"rule": "other", "file": "f",
                                      "line": 1, "message": "m",
                                      "snippet": "", "baselined": False}]}
        self.assertTrue(any("not in rules" in p
                            for p in validate_findings_json(unknown_rule)))


class BaselineTest(unittest.TestCase):
    def _write(self, entries):
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        json.dump({"schema": "mrscan-analyze-baseline-v1",
                   "entries": entries}, tmp)
        tmp.close()
        self.addCleanup(Path(tmp.name).unlink)
        return Path(tmp.name)

    def test_matching_entry_baselines_finding(self):
        path = self._write([{
            "rule": "metric-name-table", "file": "src/core/metric_bad.cpp",
            "contains": "god.count",
            "justification": "fixture: known typo kept for the test"}])
        result = run_fixture_analysis(baseline_path=path)
        baselined = [f for f in result.findings if f.baselined]
        self.assertEqual(len(baselined), 1)
        self.assertEqual(baselined[0].rule, "metric-name-table")
        self.assertNotIn(baselined[0], result.active())
        self.assertEqual(result.stale_baseline, [])

    def test_stale_entry_reported(self):
        path = self._write([{
            "rule": "no-raw-rand", "file": "src/does/not_exist.cpp",
            "contains": "nothing", "justification": "obsolete"}])
        result = run_fixture_analysis(baseline_path=path)
        self.assertEqual(len(result.stale_baseline), 1)

    def test_missing_justification_is_a_problem(self):
        path = self._write([{
            "rule": "no-raw-rand", "file": "src/io/rand_bad.cpp",
            "contains": "rand()", "justification": "  "}])
        baseline = Baseline.load(path)
        self.assertTrue(any("justification" in p
                            for p in baseline.problems))


class IncludeGraphTest(unittest.TestCase):
    def test_scan_fallback_finds_edges_and_cycles(self):
        graph = build_include_graph(FIXTURES, None)
        self.assertFalse(graph.used_compile_commands)
        edges = {(e.source, e.target) for e in graph.edges}
        self.assertIn(("src/util/layer_bad.cpp",
                       "src/core/fixture_api.hpp"), edges)
        cycles = graph.find_cycles()
        flat = ["->".join(c) for c in cycles]
        self.assertTrue(any("cycle_a" in c and "cycle_b" in c
                            for c in flat), flat)

    def test_compile_commands_seeding(self):
        cc = [{"directory": str(FIXTURES),
               "command": "c++ -c src/util/layer_bad.cpp",
               "file": "src/util/layer_bad.cpp"}]
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        json.dump(cc, tmp)
        tmp.close()
        self.addCleanup(Path(tmp.name).unlink)
        graph = build_include_graph(FIXTURES, Path(tmp.name))
        self.assertTrue(graph.used_compile_commands)
        edges = {(e.source, e.target) for e in graph.edges}
        self.assertIn(("src/util/layer_bad.cpp",
                       "src/core/fixture_api.hpp"), edges)
        # Only the listed TU (plus reachable headers) is in the graph.
        self.assertNotIn("src/io/rand_bad.cpp", graph.files)


class LexerTest(unittest.TestCase):
    def test_comments_and_strings_are_not_code(self):
        toks = tokenize('int a; // for (x : m)\n'
                        'const char* s = "rand()";\n'
                        '/* std::chrono */ int b;\n')
        code_idents = [t.text for t in toks
                       if t.kind == IDENT]
        self.assertIn("a", code_idents)
        self.assertIn("b", code_idents)
        self.assertNotIn("rand", code_idents)
        self.assertNotIn("chrono", code_idents)
        kinds = {t.kind for t in toks}
        self.assertIn(COMMENT, kinds)
        self.assertIn(STRING, kinds)

    def test_raw_strings(self):
        toks = tokenize('auto s = R"delim(for (x : m) { rand(); })delim";')
        strings = [t for t in toks if t.kind == STRING]
        self.assertEqual(len(strings), 1)
        self.assertNotIn("rand", [t.text for t in toks if t.kind == IDENT])

    def test_preprocessor_lines(self):
        toks = tokenize('#include "a/b.hpp"  // trailing\n'
                        '#define TWO \\\n  2\n'
                        'int x = TWO;\n')
        pp = [t.text for t in toks if t.kind == PP]
        self.assertEqual(len(pp), 2)
        self.assertIn('#include "a/b.hpp"', pp[0])
        self.assertNotIn("trailing", pp[0])
        self.assertIn("2", pp[1])

    def test_line_numbers_survive_block_comments(self):
        toks = tokenize("/* one\ntwo\nthree */\nint after;")
        after = [t for t in toks if t.kind == IDENT and t.text == "after"]
        self.assertEqual(after[0].line, 4)


if __name__ == "__main__":
    unittest.main(verbosity=2)
