file(REMOVE_RECURSE
  "CMakeFiles/mrscan_util.dir/logging.cpp.o"
  "CMakeFiles/mrscan_util.dir/logging.cpp.o.d"
  "CMakeFiles/mrscan_util.dir/rng.cpp.o"
  "CMakeFiles/mrscan_util.dir/rng.cpp.o.d"
  "CMakeFiles/mrscan_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mrscan_util.dir/thread_pool.cpp.o.d"
  "libmrscan_util.a"
  "libmrscan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrscan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
