#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "data/synthetic.hpp"
#include "dbscan/disjoint_set.hpp"
#include "dbscan/sequential.hpp"
#include "geometry/point.hpp"

namespace mg = mrscan::geom;
namespace md = mrscan::dbscan;

namespace {

/// Brute-force DBSCAN core flags, as an oracle.
std::vector<std::uint8_t> brute_core(const mg::PointSet& pts,
                                     const md::DbscanParams& params) {
  std::vector<std::uint8_t> core(pts.size(), 0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (mg::within_eps(pts[i], pts[j], params.eps)) ++count;
    }
    core[i] = count >= params.min_pts ? 1 : 0;
  }
  return core;
}

/// True when two labelings induce the same partition of the point set
/// (same clusters up to id renaming) and the same noise set.
bool same_partition(const md::Labeling& a, const md::Labeling& b) {
  if (a.size() != b.size()) return false;
  std::map<md::ClusterId, md::ClusterId> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool a_noise = a.cluster[i] < 0;
    const bool b_noise = b.cluster[i] < 0;
    if (a_noise != b_noise) return false;
    if (a_noise) continue;
    auto [fit, fnew] = fwd.emplace(a.cluster[i], b.cluster[i]);
    if (!fnew && fit->second != b.cluster[i]) return false;
    auto [bit, bnew] = bwd.emplace(b.cluster[i], a.cluster[i]);
    if (!bnew && bit->second != a.cluster[i]) return false;
  }
  return true;
}

mg::PointSet two_blob_data(std::vector<int>* truth = nullptr) {
  std::vector<mrscan::data::Blob> blobs{{0.0, 0.0, 0.3, 300},
                                        {10.0, 10.0, 0.3, 300}};
  return mrscan::data::gaussian_blobs(blobs, 0,
                                      mg::BBox{-5.0, -5.0, 15.0, 15.0}, 42,
                                      truth);
}

}  // namespace

TEST(SequentialDbscan, FindsTwoSeparatedBlobs) {
  std::vector<int> truth;
  const auto pts = two_blob_data(&truth);
  const auto labels =
      md::dbscan_sequential(pts, md::DbscanParams{0.3, 4});
  EXPECT_EQ(labels.cluster_count(), 2u);
  // Every point in blob 0 shares a label; likewise blob 1; labels differ.
  const md::ClusterId c0 = labels.cluster[0];
  const md::ClusterId c1 = labels.cluster[300];
  EXPECT_NE(c0, c1);
  std::size_t misplaced = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const md::ClusterId expect = truth[i] == 0 ? c0 : c1;
    if (labels.cluster[i] != expect) ++misplaced;
  }
  // Gaussian tails may create a handful of noise points, nothing more.
  EXPECT_LT(misplaced, 10u);
}

TEST(SequentialDbscan, UniformSparseIsAllNoise) {
  const auto pts = mrscan::data::uniform_points(
      200, mg::BBox{0.0, 0.0, 100.0, 100.0}, 7);
  const auto labels = md::dbscan_sequential(pts, md::DbscanParams{0.5, 5});
  EXPECT_EQ(labels.cluster_count(), 0u);
  EXPECT_EQ(labels.noise_count(), pts.size());
}

TEST(SequentialDbscan, SinglePointIsNoiseUnlessMinPtsOne) {
  mg::PointSet one{{0, 1.0, 1.0, 1.0f}};
  auto noise = md::dbscan_sequential(one, md::DbscanParams{1.0, 2});
  EXPECT_EQ(noise.cluster[0], md::kNoise);
  auto solo = md::dbscan_sequential(one, md::DbscanParams{1.0, 1});
  EXPECT_EQ(solo.cluster[0], 0);
  EXPECT_TRUE(solo.core[0]);
}

TEST(SequentialDbscan, EmptyInput) {
  const auto labels = md::dbscan_sequential({}, md::DbscanParams{1.0, 4});
  EXPECT_EQ(labels.size(), 0u);
  EXPECT_EQ(labels.cluster_count(), 0u);
}

TEST(SequentialDbscan, CoreFlagsMatchBruteForce) {
  const auto pts = mrscan::data::uniform_points(
      400, mg::BBox{0.0, 0.0, 10.0, 10.0}, 13);
  const md::DbscanParams params{0.8, 5};
  const auto labels = md::dbscan_sequential(pts, params);
  const auto expected = brute_core(pts, params);
  EXPECT_EQ(labels.core, expected);
}

TEST(SequentialDbscan, BorderPointsJoinACluster) {
  // A line of core points with one outlier just within eps of the end:
  // the outlier is a border point (non-core but clustered).
  mg::PointSet pts;
  for (int i = 0; i < 10; ++i)
    pts.push_back({static_cast<mg::PointId>(i), i * 0.5, 0.0, 1.0f});
  pts.push_back({10, 4.5 + 0.9, 0.0, 1.0f});  // borders the last core point
  const auto labels = md::dbscan_sequential(pts, md::DbscanParams{1.0, 3});
  EXPECT_EQ(labels.cluster_count(), 1u);
  EXPECT_GE(labels.cluster[10], 0);
  EXPECT_FALSE(labels.core[10]);
}

TEST(SequentialDbscan, AnnulusFormsSingleNonConvexCluster) {
  const auto pts = mrscan::data::annulus(3000, 0.0, 0.0, 4.0, 4.5, 31);
  const auto labels = md::dbscan_sequential(pts, md::DbscanParams{0.3, 4});
  EXPECT_EQ(labels.cluster_count(), 1u);
  EXPECT_LT(labels.noise_count(), 30u);
}

TEST(SequentialDbscan, NoiseRelabelledAsBorderWhenReachedLater) {
  // Point visited first looks like noise, then a later cluster claims it.
  mg::PointSet pts;
  pts.push_back({0, 0.0, 0.0, 1.0f});  // border-to-be, visited first
  for (int i = 0; i < 5; ++i)
    pts.push_back({static_cast<mg::PointId>(i + 1), 0.9 + 0.05 * i, 0.0,
                   1.0f});
  const auto labels = md::dbscan_sequential(pts, md::DbscanParams{1.0, 5});
  EXPECT_GE(labels.cluster[0], 0);
  EXPECT_FALSE(labels.core[0]);
}

TEST(DisjointSetDbscan, MatchesSequentialOnBlobs) {
  const auto pts = two_blob_data();
  const md::DbscanParams params{0.3, 4};
  const auto seq = md::dbscan_sequential(pts, params);
  const auto dsu = md::dbscan_disjoint_set(pts, params);
  EXPECT_EQ(seq.core, dsu.core);
  EXPECT_EQ(seq.cluster_count(), dsu.cluster_count());
  // Core-point cluster structure must agree exactly (border ties may not).
  md::Labeling seq_cores, dsu_cores;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!seq.core[i]) continue;
    seq_cores.cluster.push_back(seq.cluster[i]);
    dsu_cores.cluster.push_back(dsu.cluster[i]);
  }
  EXPECT_TRUE(same_partition(seq_cores, dsu_cores));
}

TEST(DisjointSetDbscan, MatchesSequentialOnUniformData) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto pts = mrscan::data::uniform_points(
        600, mg::BBox{0.0, 0.0, 8.0, 8.0}, seed);
    const md::DbscanParams params{0.45, 4};
    const auto seq = md::dbscan_sequential(pts, params);
    const auto dsu = md::dbscan_disjoint_set(pts, params);
    EXPECT_EQ(seq.core, dsu.core) << "seed " << seed;
    EXPECT_EQ(seq.cluster_count(), dsu.cluster_count()) << "seed " << seed;
    EXPECT_EQ(seq.noise_count(), dsu.noise_count()) << "seed " << seed;
  }
}

TEST(DisjointSetDbscan, StatsAreReported) {
  const auto pts = two_blob_data();
  md::DisjointSetStats stats;
  md::dbscan_disjoint_set(pts, md::DbscanParams{0.3, 4}, &stats);
  EXPECT_GT(stats.neighbor_queries, pts.size());
  EXPECT_GT(stats.union_ops, 0u);
  // Union ops are bounded by n-1 per component merge sequence.
  EXPECT_LT(stats.union_ops, pts.size());
}

TEST(Labeling, RenumberCompactsIds) {
  md::Labeling l;
  l.cluster = {7, 7, md::kNoise, 3, 3, 9, md::kUnclassified};
  l.renumber();
  EXPECT_EQ(l.cluster,
            (std::vector<md::ClusterId>{0, 0, md::kNoise, 1, 1, 2,
                                        md::kUnclassified}));
  EXPECT_EQ(l.cluster_count(), 3u);
  EXPECT_EQ(l.noise_count(), 1u);
}
