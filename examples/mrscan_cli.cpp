// mrscan_cli — file-driven command line interface to the pipeline.
//
//   $ ./examples/mrscan_cli --input points.txt --eps 0.1 --minpts 40
//         --leaves 8 --output clusters.txt
//
// Reads a point file (text "id x y [weight]" lines, or the binary format
// if the file starts with the MRSC magic), clusters it, and writes the
// labeled output ("id x y weight cluster" lines) — mirroring the paper's
// single-input-file, single-output-file contract (§3).
//
//   --input PATH      input point file (required)
//   --output PATH     output labeled file (default: <input>.clusters)
//   --eps FLOAT       DBSCAN Eps (default 0.1)
//   --minpts N        DBSCAN MinPts (default 40)
//   --leaves N        clustering leaf processes (default 8)
//   --partition-nodes N  partitioner width (default 4)
//   --host-threads N  host workers for the phase loops (0 = hardware
//                     concurrency, default 1); output is bit-identical
//                     for any value (DESIGN §8)
//   --cluster-algo A  per-leaf cluster formulation: "two-pass" (default)
//                     or "cell-graph" (DESIGN §12); both yield the same
//                     clustering
//   --index-backend B spatial index the per-leaf kernels traverse:
//                     "kdtree" (default) or "bvh" (fused traversal,
//                     DESIGN §13); both yield the same clustering. The
//                     MRSCAN_INDEX_BACKEND environment override is
//                     honoured as well.
//   --keep-noise      include noise points (cluster id -1) in the output
//   --demo N          instead of --input, generate N synthetic tweets
//   --trace-out PATH  write a Chrome trace-event JSON of the run
//                     (load in chrome://tracing or ui.perfetto.dev)
//   --metrics-out PATH  write the flat metrics snapshot JSON
//
// Out-of-core mode (DESIGN §15) — identical output, bounded memory:
//
//   --ooc-dir PATH    spool directory: partitions stream through per-leaf
//                     segment files and the cluster phase keeps only a
//                     bounded working set of leaves resident. The labeled
//                     text written to --output is byte-identical to a
//                     resident run.
//   --working-set N   leaves concurrently resident (default 8; needs
//                     --ooc-dir)
//   --resume          restore finished leaves from --ooc-dir's checkpoint
//                     manifest instead of re-clustering them
//   --ooc-abort-after N  test hook: abort (exit 3) after N freshly
//                     clustered leaves, right after a checkpoint — the
//                     run is then resumable with --resume
// Either flag enables observability; MRSCAN_TRACE_OUT / MRSCAN_METRICS_OUT
// / MRSCAN_OBS environment overrides are honoured as well.
//
// Serving mode (DESIGN §14) — a long-lived serve::ClusterService driven
// by a mutation script instead of a one-shot batch run:
//
//   $ ./examples/mrscan_cli --serve --serve-script mutations.txt
//         --eps 0.1 --minpts 40 --output live.clusters
//
//   --serve             run a ClusterService instead of the batch pipeline
//   --serve-script PATH mutation script (insert/remove/epoch/query/stats
//                       lines; see src/serve/script.hpp)
//   --serve-demo N      instead of a script: stream N generated mutations
//   --serve-initial N   demo-stream bootstrap size (default 1000)
//   --serve-epoch-every K  demo stream: advance an epoch every K
//                       mutations (default 25)
//   --serve-dist D      demo stream distribution: "twitter" (default) or
//                       "blobs"
// --eps/--minpts/--host-threads configure the service; --output writes
// the final snapshot's labeled points; --metrics-out writes the service
// registry's serve.* snapshot.
//
// Flag errors are one line on stderr + exit 2 (scripts can pattern-match
// them); runtime failures are one line + exit 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/mrscan.hpp"
#include "data/stream.hpp"
#include "data/twitter.hpp"
#include "io/labeled_file.hpp"
#include "io/point_file.hpp"
#include "obs/export.hpp"
#include "serve/script.hpp"
#include "serve/service.hpp"
#include "sweep/sweep.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input PATH [--output PATH] [--eps F] "
               "[--minpts N] [--leaves N] [--partition-nodes N] "
               "[--host-threads N] [--cluster-algo two-pass|cell-graph] "
               "[--index-backend kdtree|bvh] "
               "[--keep-noise] [--trace-out PATH] "
               "[--metrics-out PATH] "
               "[--ooc-dir PATH [--working-set N] [--resume] "
               "[--ooc-abort-after N]] | --demo N | "
               "--serve [--serve-script PATH | --serve-demo N] "
               "[--serve-initial N] [--serve-epoch-every K] "
               "[--serve-dist twitter|blobs]\n",
               argv0);
  std::exit(2);
}

/// Flag audit contract: a bad value is exactly one stderr line + exit 2.
[[noreturn]] void bad_value(const char* flag, const char* value,
                            const char* expected) {
  std::fprintf(stderr, "mrscan_cli: invalid value '%s' for %s (expected %s)\n",
               value, flag, expected);
  std::exit(2);
}

[[noreturn]] void bad_flag(const char* flag) {
  std::fprintf(stderr, "mrscan_cli: unknown flag '%s'\n", flag);
  std::exit(2);
}

bool is_binary_point_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  return in && std::memcmp(magic, "MRSC", 4) == 0;
}

struct ServeOptions {
  bool enabled = false;
  std::string script;
  std::uint64_t demo_mutations = 0;
  std::uint64_t demo_initial = 1000;
  std::uint64_t epoch_every = 25;
  mrscan::data::StreamDistribution distribution =
      mrscan::data::StreamDistribution::kTwitter;
};

/// Render a generated demo stream as script text, so the demo path and
/// the script path exercise the identical command pipeline.
std::string demo_stream_script(const ServeOptions& serve) {
  mrscan::data::StreamConfig config;
  config.distribution = serve.distribution;
  config.initial_points = serve.demo_initial;
  config.mutations = serve.demo_mutations;
  const auto stream = mrscan::data::generate_mutation_stream(config);
  std::ostringstream script;
  for (const auto& p : stream.initial) {
    script << "insert " << p.id << " " << p.x << " " << p.y << "\n";
  }
  script << "epoch\n";
  std::uint64_t since_epoch = 0;
  for (const auto& m : stream.mutations) {
    if (m.kind == mrscan::data::Mutation::Kind::kInsert) {
      script << "insert " << m.point.id << " " << m.point.x << " "
             << m.point.y << "\n";
    } else {
      script << "remove " << m.point.id << "\n";
    }
    if (++since_epoch >= serve.epoch_every) {
      script << "epoch\n";
      since_epoch = 0;
    }
  }
  if (since_epoch > 0) script << "epoch\n";
  return script.str();
}

int run_serve(const ServeOptions& serve, double eps, std::size_t min_pts,
              std::size_t host_threads, const std::string& output,
              const std::string& metrics_out) {
  using namespace mrscan;
  serve::ServeConfig config;
  config.params = {eps, min_pts};
  config.host_threads = host_threads;
  serve::ClusterService service(config);

  serve::ScriptResult script_result;
  if (!serve.script.empty()) {
    std::ifstream in(serve.script);
    if (!in) {
      std::fprintf(stderr, "mrscan_cli: cannot open serve script '%s'\n",
                   serve.script.c_str());
      return 1;
    }
    script_result = serve::run_script(service, in, std::cout);
  } else {
    std::istringstream in(demo_stream_script(serve));
    script_result = serve::run_script(service, in, std::cout);
  }
  if (!script_result.ok) {
    std::fprintf(stderr, "mrscan_cli: serve script error at line %s\n",
                 script_result.error.c_str());
    return 1;
  }

  const auto snapshot = service.snapshot();
  // Exercise the concurrent-query surface so the serve.query.* series
  // carry data (the smoke validator requires the latency histogram).
  std::size_t probed = 0;
  for (const auto& point : snapshot->points) {
    if (probed++ >= 16) break;
    (void)service.label_of(point.id);
  }
  if (!output.empty()) {
    std::vector<sweep::LabeledPoint> records;
    records.reserve(snapshot->points.size());
    for (std::size_t i = 0; i < snapshot->points.size(); ++i) {
      records.push_back(
          sweep::LabeledPoint{snapshot->points[i], snapshot->labels[i]});
    }
    try {
      sweep::write_labeled_text(output, records);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    try {
      obs::write_text_file(
          metrics_out, obs::metrics_json(service.metrics().snapshot()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  std::printf("serve: %llu commands, %llu epochs (%llu failed)\n",
              static_cast<unsigned long long>(script_result.commands),
              static_cast<unsigned long long>(script_result.epochs),
              static_cast<unsigned long long>(script_result.failed_epochs));
  std::printf("epoch %llu: %zu live points, %zu clusters\n",
              static_cast<unsigned long long>(snapshot->epoch),
              snapshot->points.size(), snapshot->clusters.size());
  if (!output.empty()) std::printf("output: %s\n", output.c_str());
  if (!metrics_out.empty()) {
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrscan;

  std::string input, output;
  double eps = 0.1;
  std::size_t min_pts = 40;
  std::size_t leaves = 8;
  std::size_t partition_nodes = 4;
  std::size_t host_threads = 1;
  bool keep_noise = false;
  std::uint64_t demo_points = 0;
  auto cluster_algo = cluster::ClusterAlgo::kTwoPass;
  auto index_backend = index::Backend::kKdTree;
  std::string trace_out, metrics_out;
  core::OocOptions ooc;
  bool working_set_given = false;
  ServeOptions serve;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--input") {
      input = next();
    } else if (arg == "--output") {
      output = next();
    } else if (arg == "--eps") {
      eps = std::strtod(next(), nullptr);
    } else if (arg == "--minpts") {
      min_pts = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--leaves") {
      leaves = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--partition-nodes") {
      partition_nodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--host-threads") {
      host_threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cluster-algo") {
      const char* value = next();
      const auto parsed = cluster::parse_cluster_algo(value);
      if (!parsed) bad_value("--cluster-algo", value, "two-pass|cell-graph");
      cluster_algo = *parsed;
    } else if (arg == "--index-backend") {
      const char* value = next();
      const auto parsed = index::parse_backend(value);
      if (!parsed) bad_value("--index-backend", value, "kdtree|bvh");
      index_backend = *parsed;
    } else if (arg == "--keep-noise") {
      keep_noise = true;
    } else if (arg == "--demo") {
      demo_points = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ooc-dir") {
      ooc.enabled = true;
      ooc.dir = next();
    } else if (arg == "--working-set") {
      const char* value = next();
      ooc.working_set = std::strtoull(value, nullptr, 10);
      working_set_given = true;
      if (ooc.working_set == 0) {
        bad_value("--working-set", value, "a positive leaf count");
      }
    } else if (arg == "--resume") {
      ooc.resume = true;
    } else if (arg == "--ooc-abort-after") {
      ooc.abort_after_leaves = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--serve") {
      serve.enabled = true;
    } else if (arg == "--serve-script") {
      serve.script = next();
    } else if (arg == "--serve-demo") {
      serve.demo_mutations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--serve-initial") {
      serve.demo_initial = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--serve-epoch-every") {
      serve.epoch_every = std::strtoull(next(), nullptr, 10);
      if (serve.epoch_every == 0) {
        bad_value("--serve-epoch-every", "0", "a positive batch size");
      }
    } else if (arg == "--serve-dist") {
      const std::string value = next();
      if (value == "twitter") {
        serve.distribution = data::StreamDistribution::kTwitter;
      } else if (value == "blobs") {
        serve.distribution = data::StreamDistribution::kBlobs;
      } else {
        bad_value("--serve-dist", value.c_str(), "twitter|blobs");
      }
    } else {
      bad_flag(arg.c_str());
    }
  }

  if (serve.enabled) {
    if (serve.script.empty() && serve.demo_mutations == 0) {
      std::fprintf(stderr,
                   "mrscan_cli: --serve needs --serve-script PATH or "
                   "--serve-demo N\n");
      return 2;
    }
    return run_serve(serve, eps, min_pts, host_threads, output, metrics_out);
  }
  if (!serve.script.empty() || serve.demo_mutations != 0) {
    std::fprintf(stderr,
                 "mrscan_cli: --serve-script/--serve-demo need --serve\n");
    return 2;
  }
  if (!ooc.enabled &&
      (working_set_given || ooc.resume || ooc.abort_after_leaves != 0)) {
    std::fprintf(stderr,
                 "mrscan_cli: --working-set/--resume/--ooc-abort-after "
                 "need --ooc-dir PATH\n");
    return 2;
  }
  if (input.empty() && demo_points == 0) usage(argv[0]);

  geom::PointSet points;
  if (demo_points > 0) {
    data::TwitterConfig tw;
    tw.num_points = demo_points;
    points = data::generate_twitter(tw);
    if (input.empty()) input = "demo";
    std::printf("generated %llu demo points\n",
                static_cast<unsigned long long>(demo_points));
  } else {
    try {
      points = is_binary_point_file(input) ? io::read_points_binary(input)
                                           : io::read_points_text(input);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("read %zu points from %s\n", points.size(), input.c_str());
  }
  if (output.empty()) output = input + ".clusters";

  core::MrScanConfig config;
  config.params = {eps, min_pts};
  config.leaves = leaves;
  config.partition_nodes = partition_nodes;
  config.host_threads = host_threads;
  config.cluster_algo = cluster_algo;
  config.index_backend = index_backend;
  config.keep_noise = keep_noise;
  config.ooc = ooc;
  if (!trace_out.empty() || !metrics_out.empty()) {
    config.observability.enabled = true;
    config.observability.trace_out = trace_out;
    config.observability.metrics_out = metrics_out;
  }

  const core::MrScan pipeline(config);
  core::MrScanResult result;
  try {
    result = pipeline.run(points);
  } catch (const core::OocAborted& e) {
    // The checkpoint written just before the abort makes the run
    // resumable; scripts pattern-match exit 3 for "killed, resume me".
    std::fprintf(stderr, "mrscan_cli: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  try {
    if (ooc.enabled) {
      // Convert the streamed binary output to the labeled text contract so
      // an out-of-core CLI run's --output is byte-identical to a resident
      // run's.
      std::vector<sweep::LabeledPoint> records;
      io::LabeledFileReader reader(result.output_path);
      records.reserve(reader.records());
      geom::Point point;
      std::int64_t cluster = 0;
      while (reader.next(point, cluster)) {
        records.push_back(sweep::LabeledPoint{point, cluster});
      }
      sweep::write_labeled_text(output, records);
    } else {
      sweep::write_labeled_text(output, result.output);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("clusters: %zu\n", result.cluster_count);
  std::printf("output records: %llu -> %s\n",
              static_cast<unsigned long long>(result.output_records),
              output.c_str());
  if (ooc.enabled && result.ooc_leaves_restored > 0) {
    std::printf("resumed: %zu leaves restored from checkpoint\n",
                result.ooc_leaves_restored);
  }
  // One-line phase breakdown straight from the run's metrics registry.
  std::printf("wall: %s\n", result.obs->phase_summary().c_str());
  std::printf("simulated (Titan model): total %.2fs [startup %.2f, "
              "partition %.2f, cluster+merge %.2f, sweep %.2f]\n",
              result.sim.total(), result.sim.startup, result.sim.partition,
              result.sim.cluster_merge, result.sim.sweep);
  if (!trace_out.empty()) std::printf("trace: %s\n", trace_out.c_str());
  if (!metrics_out.empty()) {
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  return 0;
}
