// Fixture: scratch-scope negatives — task-local scratch (the blessed
// pattern), scratch used outside any task, and an annotated share.
#include <cstddef>
#include <vector>

#include "index/query_scratch.hpp"
#include "util/thread_pool.hpp"

namespace fixture {

void task_local_scratch(mrscan::util::ThreadPool& pool,
                        std::vector<int>& out) {
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    mrscan::index::QueryScratch scratch;
    out[i] = query(scratch, i);
  });
}

int sequential_scratch(std::size_t n) {
  mrscan::index::QueryScratch scratch;
  int total = 0;
  for (std::size_t i = 0; i < n; ++i) total += query(scratch, i);
  return total;
}

void annotated_share(mrscan::util::ThreadPool& pool,
                     std::vector<int>& out) {
  mrscan::index::QueryScratch scratch;
  pool.parallel_for(0, out.size(), [&](std::size_t i) {
    // scratch-scope-ok: single-worker pool in this fixture path
    out[i] = query(scratch, i);
  });
}

}  // namespace fixture
