#include "core/serve_state.hpp"

#include <algorithm>
#include <map>

namespace mrscan::core {

ServeState extract_serve_state(const MrScanConfig& config,
                               const MrScanResult& result,
                               std::span<const geom::Point> all_points) {
  ServeState state;
  state.params = config.params;
  state.host_threads = config.host_threads;

  // Id-keyed merge of the clustered output with the (optional) full input:
  // output records carry the authoritative labels, input records supply
  // noise points a keep_noise=false run dropped.
  std::map<geom::PointId, sweep::LabeledPoint> by_id;
  for (const geom::Point& p : all_points) {
    by_id.emplace(p.id, sweep::LabeledPoint{p, dbscan::kNoise});
  }
  for (const sweep::LabeledPoint& rec : result.output) {
    by_id.insert_or_assign(rec.point.id, rec);
  }

  state.points.reserve(by_id.size());
  state.labels.reserve(by_id.size());
  for (const auto& [id, rec] : by_id) {
    state.points.push_back(rec.point);
    state.labels.push_back(rec.cluster);
  }
  return state;
}

}  // namespace mrscan::core
