#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_set>

#include "data/synthetic.hpp"
#include "data/twitter.hpp"
#include "geometry/rep_points.hpp"
#include "index/grid.hpp"
#include "partition/distributed.hpp"
#include "partition/materialize.hpp"
#include "partition/partitioner.hpp"

namespace mg = mrscan::geom;
namespace mi = mrscan::index;
namespace mp = mrscan::partition;

namespace {

mg::PointSet twitter_points(std::uint64_t n, std::uint64_t seed = 1) {
  mrscan::data::TwitterConfig config;
  config.num_points = n;
  config.seed = seed;
  return mrscan::data::generate_twitter(config);
}

struct TestData {
  mg::PointSet points;
  mg::GridGeometry geometry;
  mi::CellHistogram hist;

  TestData(mg::PointSet pts, double eps)
      : points(std::move(pts)),
        geometry{mg::bbox_of(points).min_x, mg::bbox_of(points).min_y, eps},
        hist(geometry, points) {}
};

}  // namespace

TEST(Partitioner, CoversAllCellsExactlyOnce) {
  TestData s(twitter_points(30000), 0.1);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{16, 4, true, 1.075});
  plan.validate(s.hist);  // throws on any violation
  EXPECT_LE(plan.part_count(), 16u);
  EXPECT_GE(plan.part_count(), 2u);
  EXPECT_EQ(plan.total_owned_points(), s.points.size());
}

TEST(Partitioner, PartitionsAreRoughlyBalanced) {
  TestData s(twitter_points(60000), 0.1);
  mp::PartitionerConfig config{32, 4, true, 1.075};
  const auto plan = mp::plan_partitions(s.hist, s.geometry, config);
  const double mean =
      static_cast<double>(plan.total_points_with_shadow()) /
      static_cast<double>(plan.part_count());
  // After rebalancing, every multi-cell partition except the first
  // respects the threshold: single-cell partitions cannot be subdivided
  // (the paper's dense-cell limit) and the first partition absorbs the
  // residue of the backward pass (Figure 2d). Shadow sizes drift as
  // ownership moves — more so with the 2*Eps halos — hence the 15% slack.
  for (std::size_t pi = 1; pi < plan.part_count(); ++pi) {
    const auto& part = plan.parts[pi];
    if (part.owned_cells.size() > 1) {
      EXPECT_LE(static_cast<double>(part.total_points()),
                config.rebalance_threshold * mean * 1.15)
          << "partition " << pi;
    }
  }
}

TEST(Partitioner, RebalanceShrinksLastPartition) {
  // Sequential packing dumps the residue into the last partition; the
  // rebalance pass must shrink it (Figure 2).
  TestData s(twitter_points(50000), 0.1);
  mp::PartitionerConfig no_reb{16, 4, false, 1.075};
  mp::PartitionerConfig reb{16, 4, true, 1.075};
  const auto before = mp::plan_partitions(s.hist, s.geometry, no_reb);
  const auto after = mp::plan_partitions(s.hist, s.geometry, reb);
  ASSERT_EQ(before.part_count(), after.part_count());
  const auto& last_before = before.parts.back();
  const auto& last_after = after.parts.back();
  EXPECT_LE(last_after.total_points(), last_before.total_points());

  // Spread (max/mean) must not get meaningfully worse. It is not strictly
  // monotone: trimming a boundary cell drags its whole 2*Eps halo into
  // the receiving partition, so on hot-spot-heavy inputs a trim can bump
  // another partition's total slightly above the old maximum.
  auto spread = [](const mp::PartitionPlan& plan) {
    std::uint64_t mx = 0, total = 0;
    for (const auto& p : plan.parts) {
      mx = std::max(mx, p.total_points());
      total += p.total_points();
    }
    return static_cast<double>(mx) * plan.part_count() /
           static_cast<double>(total);
  };
  EXPECT_LE(spread(after), spread(before) * 1.15);
}

TEST(Partitioner, ShadowRegionsAreExactlyTheNonOwnedNeighbors) {
  // Shadow = every non-empty cell within shadow_rings (2*Eps) of an owned
  // cell that the partition does not own itself — no more, no less.
  TestData s(twitter_points(20000), 0.1);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{8, 4, true, 1.075});
  ASSERT_EQ(plan.shadow_rings, 2);
  for (std::size_t pi = 0; pi < plan.part_count(); ++pi) {
    const auto& part = plan.parts[pi];
    std::set<std::uint64_t> expected;
    for (const std::uint64_t code : part.owned_cells) {
      mg::for_each_neighbor_within(
          mg::cell_from_code(code), plan.shadow_rings, [&](mg::CellKey nbr) {
            if (s.hist.count_of(nbr) == 0) return;
            if (plan.owner_of(mg::cell_code(nbr)) == pi) return;
            expected.insert(mg::cell_code(nbr));
          });
    }
    std::set<std::uint64_t> got(part.shadow_cells.begin(),
                                part.shadow_cells.end());
    EXPECT_EQ(got, expected) << "partition " << pi;
  }
}

TEST(Partitioner, EveryPartitionHasAtLeastMinPtsWhenPossible) {
  TestData s(twitter_points(40000), 0.1);
  const std::size_t min_pts = 40;
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{32, min_pts, true, 1.075});
  for (const auto& part : plan.parts) {
    EXPECT_GE(part.owned_points, min_pts);
  }
}

TEST(Partitioner, SinglePartitionOwnsEverything) {
  TestData s(twitter_points(5000), 0.1);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{1, 4, true, 1.075});
  ASSERT_EQ(plan.part_count(), 1u);
  EXPECT_EQ(plan.parts[0].owned_points, 5000u);
  EXPECT_TRUE(plan.parts[0].shadow_cells.empty());
}

TEST(Partitioner, MorePartsThanCellsClamps) {
  // 10 points in a handful of cells, 1000 requested partitions.
  TestData s(mrscan::data::uniform_points(10, mg::BBox{0, 0, 1, 1}, 3), 0.5);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{1000, 1, true, 1.075});
  EXPECT_LE(plan.part_count(), s.hist.cell_count());
  plan.validate(s.hist);
}

TEST(Partitioner, EmptyHistogram) {
  mi::CellHistogram empty;
  const auto plan = mp::plan_partitions(
      empty, mg::GridGeometry{0, 0, 1.0},
      mp::PartitionerConfig{4, 4, true, 1.075});
  EXPECT_EQ(plan.part_count(), 0u);
}

TEST(Partitioner, PartitionsAreContiguousInGridOrder) {
  // Cells assigned to partition k must all precede cells of partition k+1
  // in grid order — before rebalancing moves boundary cells.
  TestData s(twitter_points(30000), 0.1);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{8, 4, false, 1.075});
  mg::CellKey prev_max{INT32_MIN, INT32_MIN};
  for (const auto& part : plan.parts) {
    mg::CellKey lo{INT32_MAX, INT32_MAX}, hi{INT32_MIN, INT32_MIN};
    for (const std::uint64_t code : part.owned_cells) {
      const mg::CellKey k = mg::cell_from_code(code);
      if (k < lo) lo = k;
      if (hi < k) hi = k;
    }
    EXPECT_TRUE(prev_max < lo);
    prev_max = hi;
  }
}

TEST(Materialize, SegmentsContainOwnedAndShadowPoints) {
  TestData s(twitter_points(10000), 0.1);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{4, 4, true, 1.075});
  const mi::Grid grid(s.geometry, s.points);
  const auto segments = mp::materialize_partitions(plan, grid, s.points);
  ASSERT_EQ(segments.size(), plan.part_count());

  std::size_t total_owned = 0;
  std::unordered_set<std::uint64_t> seen_ids;
  for (std::size_t pi = 0; pi < segments.size(); ++pi) {
    EXPECT_EQ(segments[pi].owned.size(), plan.parts[pi].owned_points);
    EXPECT_EQ(segments[pi].shadow.size(), plan.parts[pi].shadow_points);
    total_owned += segments[pi].owned.size();
    for (const auto& p : segments[pi].owned) {
      EXPECT_TRUE(seen_ids.insert(p.id).second)
          << "point owned by two partitions";
    }
  }
  EXPECT_EQ(total_owned, s.points.size());
}

TEST(Materialize, ShadowPointsCompleteTheEpsNeighborhood) {
  // Correctness property from §3.1.1: for every owned point, its full
  // Eps-neighbourhood is present in the partition (owned + shadow).
  TestData s(twitter_points(4000), 0.1);
  const double eps = 0.1;
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{4, 4, true, 1.075});
  const mi::Grid grid(s.geometry, s.points);
  const auto segments = mp::materialize_partitions(plan, grid, s.points);

  for (const auto& seg : segments) {
    std::unordered_set<std::uint64_t> present;
    for (const auto& p : seg.owned) present.insert(p.id);
    for (const auto& p : seg.shadow) present.insert(p.id);
    for (const auto& p : seg.owned) {
      for (const auto& q : s.points) {
        if (mg::within_eps(p, q, eps)) {
          EXPECT_TRUE(present.contains(q.id))
              << "missing neighbour " << q.id << " of owned point " << p.id;
        }
      }
    }
  }
}

TEST(Materialize, ShadowRepOptimisationShrinksDenseShadowCells) {
  TestData s(twitter_points(50000), 0.1);
  const auto plan = mp::plan_partitions(
      s.hist, s.geometry, mp::PartitionerConfig{8, 4, true, 1.075});
  const mi::Grid grid(s.geometry, s.points);
  const auto full = mp::materialize_partitions(plan, grid, s.points);
  mp::MaterializeConfig opt;
  opt.shadow_rep_threshold = 32;
  const auto reduced = mp::materialize_partitions(plan, grid, s.points, opt);

  std::size_t full_shadow = 0, reduced_shadow = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    full_shadow += full[i].shadow.size();
    reduced_shadow += reduced[i].shadow.size();
    // Owned contents are untouched by the optimisation.
    EXPECT_EQ(full[i].owned, reduced[i].owned);
  }
  EXPECT_LT(reduced_shadow, full_shadow);
}

TEST(RepPoints, AtMostEightAndFromCandidates) {
  const mg::GridGeometry g{0.0, 0.0, 1.0};
  const auto pts =
      mrscan::data::uniform_points(200, mg::BBox{0.0, 0.0, 1.0, 1.0}, 7);
  std::vector<std::uint32_t> all(pts.size());
  std::iota(all.begin(), all.end(), 0);
  const auto reps =
      mg::select_cell_representatives(g, mg::CellKey{0, 0}, pts, all);
  EXPECT_LE(reps.size(), 8u);
  EXPECT_GE(reps.size(), 1u);
  for (const auto idx : reps) EXPECT_LT(idx, pts.size());
  EXPECT_TRUE(std::is_sorted(reps.begin(), reps.end()));
}

TEST(RepPoints, CornerPointsAreChosen) {
  // Points exactly on the corners must be selected for those anchors.
  const mg::GridGeometry g{0.0, 0.0, 1.0};
  mg::PointSet pts{{0, 0.01, 0.01, 1.0f},
                   {1, 0.99, 0.01, 1.0f},
                   {2, 0.5, 0.5, 1.0f},
                   {3, 0.01, 0.99, 1.0f},
                   {4, 0.99, 0.99, 1.0f}};
  std::vector<std::uint32_t> all{0, 1, 2, 3, 4};
  const auto reps =
      mg::select_cell_representatives(g, mg::CellKey{0, 0}, pts, all);
  for (const std::uint32_t corner : {0u, 1u, 3u, 4u}) {
    EXPECT_NE(std::find(reps.begin(), reps.end(), corner), reps.end());
  }
}

TEST(RepPoints, EmptyCandidates) {
  const mg::GridGeometry g{0.0, 0.0, 1.0};
  mg::PointSet pts;
  EXPECT_TRUE(
      mg::select_cell_representatives(g, mg::CellKey{0, 0}, pts, {})
          .empty());
}

TEST(DistributedPartitioner, ProducesSamePlanAsSerial) {
  TestData s(twitter_points(20000), 0.1);
  mp::DistributedPartitionerConfig config;
  config.eps = 0.1;
  config.planner = mp::PartitionerConfig{8, 4, true, 1.075};
  config.partition_nodes = 4;
  const auto result = mp::run_distributed_partitioner(
      s.points, config, mrscan::sim::TitanParams{});

  const auto serial =
      mp::plan_partitions(s.hist, s.geometry, config.planner);
  ASSERT_EQ(result.plan.part_count(), serial.part_count());
  for (std::size_t pi = 0; pi < serial.part_count(); ++pi) {
    EXPECT_EQ(result.plan.parts[pi].owned_cells,
              serial.parts[pi].owned_cells);
    EXPECT_EQ(result.plan.parts[pi].shadow_points,
              serial.parts[pi].shadow_points);
  }
  ASSERT_EQ(result.segments.size(), serial.part_count());
}

TEST(DistributedPartitioner, TimesBreakdownIsPopulated) {
  TestData s(twitter_points(10000), 0.1);
  mp::DistributedPartitionerConfig config;
  config.eps = 0.1;
  config.planner = mp::PartitionerConfig{4, 4, true, 1.075};
  config.partition_nodes = 2;
  const auto result = mp::run_distributed_partitioner(
      s.points, config, mrscan::sim::TitanParams{});
  EXPECT_GT(result.read_seconds, 0.0);
  EXPECT_GT(result.write_seconds, 0.0);
  EXPECT_GT(result.histogram_reduce_seconds, 0.0);
  EXPECT_GT(result.sim_seconds, result.write_seconds);
  // The paper's observation: writes dominate reads for this pattern.
  EXPECT_GT(result.write_seconds, result.read_seconds);
}

TEST(DistributedPartitioner, ModelModeMatchesPlanOfRealMode) {
  TestData s(twitter_points(20000), 0.1);
  mp::DistributedPartitionerConfig config;
  config.eps = 0.1;
  config.planner = mp::PartitionerConfig{8, 4, true, 1.075};
  config.partition_nodes = 4;

  const auto real = mp::run_distributed_partitioner(
      s.points, config, mrscan::sim::TitanParams{});
  const auto model = mp::run_distributed_partitioner_model(
      s.hist, s.geometry, s.points.size(), config,
      mrscan::sim::TitanParams{});
  ASSERT_EQ(model.plan.part_count(), real.plan.part_count());
  for (std::size_t pi = 0; pi < model.plan.part_count(); ++pi) {
    EXPECT_EQ(model.plan.parts[pi].owned_cells,
              real.plan.parts[pi].owned_cells);
  }
  EXPECT_TRUE(model.segments.empty());
  EXPECT_GT(model.sim_seconds, 0.0);
}
