// Proof of the allocation-free query engine contract (DESIGN §10): once a
// QueryScratch is warm, radius_query / count_in_radius / *_many on KDTree,
// BVH, RTree, and Grid perform ZERO heap allocations. The whole binary runs
// under a counting global operator new, so any hidden allocation on the
// steady-state path — a stack regrowth, a temporary vector, a span copy
// gone wrong — shows up as a nonzero delta.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <span>
#include <vector>

#include "data/synthetic.hpp"
#include "geometry/point.hpp"
#include "index/bvh.hpp"
#include "index/grid.hpp"
#include "index/kdtree.hpp"
#include "index/query_scratch.hpp"
#include "index/rtree.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

namespace mg = mrscan::geom;
namespace mi = mrscan::index;

mg::PointSet test_points(std::size_t n, std::uint64_t seed) {
  return mrscan::data::uniform_points(n, mg::BBox{0.0, 0.0, 10.0, 10.0},
                                      seed);
}

std::vector<std::uint32_t> all_indices(std::size_t n) {
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::uint32_t{0});
  return idx;
}

/// Run `body` twice: once to warm the scratch, once counted. Returns the
/// allocation delta of the counted run; both runs must produce the same
/// checksum (so the work cannot be optimized away or diverge).
template <typename Body>
std::uint64_t steady_state_allocations(Body&& body) {
  const std::uint64_t warm = body();
  const std::uint64_t before = g_allocations.load();
  const std::uint64_t counted = body();
  const std::uint64_t delta = g_allocations.load() - before;
  EXPECT_EQ(warm, counted) << "warm-up and counted runs diverged";
  return delta;
}

TEST(QueryAlloc, KDTreeSteadyStateIsAllocationFree) {
  const auto pts = test_points(4000, 21);
  const mi::KDTree tree(pts, mi::KDTreeConfig{24, 0.0});
  const auto queries = all_indices(pts.size());
  mi::QueryScratch scratch;

  const std::uint64_t delta = steady_state_allocations([&] {
    std::uint64_t checksum = 0;
    tree.radius_query_many(
        queries, 0.4, scratch,
        [&](std::size_t, std::span<const std::uint32_t> neighbors,
            std::uint64_t ops) {
          checksum += neighbors.size() + ops;
          for (const std::uint32_t nb : neighbors) checksum += nb;
        });
    tree.count_in_radius_many(
        queries, 0.4, 4, scratch,
        [&](std::size_t, std::size_t count, std::uint64_t ops) {
          checksum += count + ops;
        });
    checksum += tree.count_in_radius(pts[0], 0.4, scratch);
    checksum += tree.radius_query(pts[1], 0.4, scratch).size();
    return checksum;
  });
  EXPECT_EQ(delta, 0u);
}

TEST(QueryAlloc, BVHSteadyStateIsAllocationFree) {
  const auto pts = test_points(4000, 25);
  const mi::BVH tree(pts, mi::BVHConfig{24, 0.0});
  const auto queries = all_indices(pts.size());
  mi::QueryScratch scratch;

  const std::uint64_t delta = steady_state_allocations([&] {
    std::uint64_t checksum = 0;
    tree.radius_query_many(
        queries, 0.4, scratch,
        [&](std::size_t, std::span<const std::uint32_t> neighbors,
            std::uint64_t ops) {
          checksum += neighbors.size() + ops;
          for (const std::uint32_t nb : neighbors) checksum += nb;
        });
    tree.count_in_radius_many(
        queries, 0.4, 4, scratch,
        [&](std::size_t, std::size_t count, std::uint64_t ops) {
          checksum += count + ops;
        });
    // The fused path must be allocation-free too — it is the hot loop of
    // the BVH-backed kernels.
    tree.for_each_in_radius_many(
        queries, 0.4, scratch,
        [&](std::size_t, std::uint32_t idx) { checksum += idx; },
        [&](std::size_t, mi::TraversalCost cost) {
          checksum += cost.total();
        });
    checksum += tree.count_in_radius(pts[0], 0.4, scratch);
    checksum += tree.radius_query(pts[1], 0.4, scratch).size();
    return checksum;
  });
  EXPECT_EQ(delta, 0u);
}

TEST(QueryAlloc, RTreeSteadyStateIsAllocationFree) {
  const auto pts = test_points(3000, 22);
  const mi::RTree tree(pts);
  const auto queries = all_indices(pts.size());
  mi::QueryScratch scratch;

  const std::uint64_t delta = steady_state_allocations([&] {
    std::uint64_t checksum = 0;
    tree.radius_query_many(
        queries, 0.4, scratch,
        [&](std::size_t, std::span<const std::uint32_t> neighbors,
            std::uint64_t ops) {
          checksum += neighbors.size() + ops;
          for (const std::uint32_t nb : neighbors) checksum += nb;
        });
    checksum += tree.count_in_radius(pts[0], 0.4, scratch);
    checksum += tree.radius_query(pts[1], 0.4, scratch).size();
    return checksum;
  });
  EXPECT_EQ(delta, 0u);
}

TEST(QueryAlloc, GridSteadyStateIsAllocationFree) {
  const auto pts = test_points(3000, 23);
  const double eps = 0.5;
  const mi::Grid grid(mg::GridGeometry{0.0, 0.0, eps}, pts);
  const auto queries = all_indices(pts.size());
  mi::QueryScratch scratch;

  const std::uint64_t delta = steady_state_allocations([&] {
    std::uint64_t checksum = 0;
    grid.radius_query_many(
        queries, eps, scratch,
        [&](std::size_t, std::span<const std::uint32_t> neighbors,
            std::uint64_t ops) {
          checksum += neighbors.size() + ops;
          for (const std::uint32_t nb : neighbors) checksum += nb;
        });
    checksum += grid.radius_query(pts[0], eps, scratch).size();
    return checksum;
  });
  EXPECT_EQ(delta, 0u);
}

TEST(QueryAlloc, CounterSeesOrdinaryAllocations) {
  // Sanity check on the harness itself: an actual allocation is counted.
  const std::uint64_t before = g_allocations.load();
  std::vector<std::uint32_t>* v = new std::vector<std::uint32_t>(100);
  const std::uint64_t after = g_allocations.load();
  delete v;
  EXPECT_GT(after, before);
}

}  // namespace
