#include "index/bvh.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace mrscan::index {

namespace {

/// Spread the low 16 bits of `v` so one zero bit separates each pair.
std::uint32_t spread_bits16(std::uint32_t v) {
  v &= 0x0000ffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

/// 32-bit Morton code from 16-bit quantized coordinates.
std::uint32_t morton2(std::uint32_t qx, std::uint32_t qy) {
  return spread_bits16(qx) | (spread_bits16(qy) << 1);
}

}  // namespace

BVH::BVH(std::span<const geom::Point> points, BVHConfig config)
    : points_(points), config_(config) {
  MRSCAN_REQUIRE(config.max_leaf_points >= 1);
  order_.resize(points.size());
  std::iota(order_.begin(), order_.end(), std::uint32_t{0});
  point_leaf_.resize(points.size());
  if (!points.empty()) {
    // Quantize onto a 2^16 grid over the global box and sort by Morton
    // code; the original index is the tiebreaker so duplicate (and
    // co-quantized) points keep a deterministic order.
    const geom::BBox world = geom::bbox_of(points);
    const double sx =
        world.width() > 0.0 ? 65535.0 / world.width() : 0.0;
    const double sy =
        world.height() > 0.0 ? 65535.0 / world.height() : 0.0;
    std::vector<std::uint32_t> code(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto qx =
          static_cast<std::uint32_t>((points[i].x - world.min_x) * sx);
      const auto qy =
          static_cast<std::uint32_t>((points[i].y - world.min_y) * sy);
      code[i] = morton2(qx, qy);
    }
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (code[a] != code[b]) return code[a] < code[b];
                return a < b;
              });
    nodes_.reserve(points.size() / config.max_leaf_points * 2 + 2);
    build(0, static_cast<std::uint32_t>(points.size()), 0);
  }
  // SoA mirror in leaf (Morton) order, the same streaming layout as the
  // KD-tree's.
  leaf_x_.resize(points.size());
  leaf_y_.resize(points.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    leaf_x_[i] = points_[order_[i]].x;
    leaf_y_[i] = points_[order_[i]].y;
  }
}

std::uint32_t BVH::build(std::uint32_t begin, std::uint32_t end, int depth) {
  const std::uint32_t node_id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();

  geom::BBox box;
  for (std::uint32_t i = begin; i < end; ++i) box.expand(points_[order_[i]]);

  const std::size_t n = end - begin;
  const bool small_enough = n <= config_.max_leaf_points;
  const bool extent_stop =
      config_.min_leaf_extent > 0.0 &&
      box.width() <= config_.min_leaf_extent &&
      box.height() <= config_.min_leaf_extent;

  if (small_enough || extent_stop || depth > 48) {
    Node& node = nodes_[node_id];
    node.box = box;
    node.leaf_id = static_cast<std::uint32_t>(leaves_.size());
    leaves_.push_back(Leaf{box, begin, end});
    for (std::uint32_t i = begin; i < end; ++i)
      point_leaf_[order_[i]] = node.leaf_id;
    return node_id;
  }

  // Median split of the Morton-ordered range: the LBVH analogue of the
  // KD-tree's median split, with no re-partitioning (the sort already
  // settled the order).
  const std::uint32_t mid = begin + static_cast<std::uint32_t>(n / 2);
  const std::uint32_t left = build(begin, mid, depth + 1);
  const std::uint32_t right = build(mid, end, depth + 1);
  Node& node = nodes_[node_id];
  node.box = box;
  node.left = left;
  node.right = right;
  node.leaf_id = kNoLeaf;
  return node_id;
}

std::size_t BVH::count_in_radius(const geom::Point& p, double radius,
                                 QueryScratch& scratch, std::size_t at_least,
                                 std::uint64_t* ops,
                                 std::uint64_t* steps) const {
  std::size_t count = 0;
  if (nodes_.empty()) return 0;
  const double r2 = radius * radius;
  std::uint64_t work = 0;
  std::uint64_t visited = 0;
  const double* xs = leaf_x_.data();
  const double* ys = leaf_y_.data();

  auto& stack = scratch.stack;
  stack.clear();
  stack.push_back(0);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    ++visited;
    if (node.box.dist2_to(p) > r2) continue;
    if (node.is_leaf()) {
      const Leaf& leaf = leaves_[node.leaf_id];
      for (std::uint32_t i = leaf.begin; i < leaf.end; ++i) {
        ++work;
        const double dx = p.x - xs[i];
        const double dy = p.y - ys[i];
        if (dx * dx + dy * dy <= r2) {
          ++count;
          if (at_least != 0 && count >= at_least) {
            if (ops) *ops += work;
            if (steps) *steps += visited;
            return count;
          }
        }
      }
    } else {
      stack.push_back(node.right);
      stack.push_back(node.left);
    }
  }
  if (ops) *ops += work;
  if (steps) *steps += visited;
  return count;
}

std::span<const std::uint32_t> BVH::radius_query(
    const geom::Point& p, double radius, QueryScratch& scratch,
    std::uint64_t* ops, std::uint64_t* steps) const {
  auto& out = scratch.results;
  out.clear();
  TraversalCost cost = for_each_in_radius(
      p, radius, scratch, [&](std::uint32_t idx) { out.push_back(idx); });
  if (ops) *ops += cost.dist_ops;
  if (steps) *steps += cost.node_steps;
  return out;
}

std::size_t BVH::count_in_radius(const geom::Point& p, double radius,
                                 std::size_t at_least,
                                 std::uint64_t* ops) const {
  QueryScratch scratch;
  return count_in_radius(p, radius, scratch, at_least, ops);
}

void BVH::radius_query(const geom::Point& p, double radius,
                       std::vector<std::uint32_t>& out,
                       std::uint64_t* ops) const {
  QueryScratch scratch;
  scratch.results.swap(out);  // reuse the caller's capacity
  radius_query(p, radius, scratch, ops);
  scratch.results.swap(out);
}

}  // namespace mrscan::index
