// Unit tests for the canonical-relabel clustering comparison the
// differential battery relies on: if this helper were too lax the
// cell-graph / two-pass equivalence proof would be vacuous.
#include "cluster_equiv.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mt = mrscan::test;
using mrscan::dbscan::ClusterId;
using mrscan::dbscan::kNoise;

namespace {
using Labels = std::vector<ClusterId>;
}  // namespace

TEST(ClusterEquiv, CanonicalRelabelNumbersByFirstAppearance) {
  const Labels in{7, 7, 3, kNoise, 3, 9};
  const Labels expect{0, 0, 1, kNoise, 1, 2};
  EXPECT_EQ(mt::canonical_relabel(in), expect);
}

TEST(ClusterEquiv, CanonicalRelabelIsIdempotent) {
  const Labels in{5, kNoise, 5, 2, 0, 2};
  const auto once = mt::canonical_relabel(in);
  EXPECT_EQ(mt::canonical_relabel(once), once);
}

TEST(ClusterEquiv, PermutedClusterIdsMatch) {
  const Labels a{0, 0, 1, 1, 2, kNoise};
  const Labels b{42, 42, 7, 7, 0, kNoise};
  EXPECT_TRUE(mt::same_clustering(a, b));
  EXPECT_TRUE(mt::same_clustering(b, a));
}

TEST(ClusterEquiv, MergedClustersDoNotMatch) {
  // b merges a's clusters 0 and 1 into one — the map 0->0, 1->0 is not a
  // bijection and canonicalization must expose it (in both directions).
  const Labels a{0, 0, 1, 1};
  const Labels b{0, 0, 0, 0};
  EXPECT_FALSE(mt::same_clustering(a, b));
  EXPECT_FALSE(mt::same_clustering(b, a));
}

TEST(ClusterEquiv, SplitClusterDoesNotMatch) {
  const Labels a{3, 3, 3, kNoise};
  const Labels b{0, 1, 0, kNoise};
  EXPECT_FALSE(mt::same_clustering(a, b));
  EXPECT_FALSE(mt::same_clustering(b, a));
}

TEST(ClusterEquiv, NoiseVersusClusterDoesNotMatch) {
  const Labels a{0, kNoise, 0};
  const Labels b{0, 0, 0};
  EXPECT_FALSE(mt::same_clustering(a, b));
  EXPECT_FALSE(mt::same_clustering(b, a));
}

TEST(ClusterEquiv, DifferentLengthsNeverMatch) {
  const Labels a{0, 0};
  const Labels b{0, 0, 0};
  EXPECT_FALSE(mt::same_clustering(a, b));
}

TEST(ClusterEquiv, EmptyLabelingsMatch) {
  EXPECT_TRUE(mt::same_clustering(Labels{}, Labels{}));
}
