#include "merge/summary.hpp"

#include <algorithm>
#include <unordered_map>

#include "geometry/rep_points.hpp"
#include "util/assert.hpp"

namespace mrscan::merge {

mrnet::Packet MergeSummary::to_packet() const {
  mrnet::Packet p;
  p.put_u64(clusters.size());
  for (const ClusterSummary& cluster : clusters) {
    p.put_u64(cluster.owned_points);
    p.put_u64(cluster.cells.size());
    for (const CellSummary& cell : cluster.cells) {
      p.put_u64(cell.cell_code);
      p.put_u8(cell.from_shadow ? 1 : 0);
      p.put_pod_vector(cell.reps);
      p.put_pod_vector(cell.noncore);
    }
  }
  return p;
}

MergeSummary MergeSummary::from_packet(const mrnet::Packet& packet) {
  MergeSummary summary;
  auto r = packet.reader();
  const std::uint64_t n_clusters = r.get_u64();
  summary.clusters.resize(n_clusters);
  for (ClusterSummary& cluster : summary.clusters) {
    cluster.owned_points = r.get_u64();
    const std::uint64_t n_cells = r.get_u64();
    cluster.cells.resize(n_cells);
    for (CellSummary& cell : cluster.cells) {
      cell.cell_code = r.get_u64();
      cell.from_shadow = r.get_u8() != 0;
      cell.reps = r.get_pod_vector<SummaryPoint>();
      cell.noncore = r.get_pod_vector<SummaryPoint>();
    }
  }
  return summary;
}

MergeSummary build_leaf_summary(const LeafSummaryInput& input) {
  MRSCAN_REQUIRE(input.labels != nullptr);
  MRSCAN_REQUIRE(input.labels->size() == input.points.size());
  MRSCAN_REQUIRE(input.owned_count <= input.points.size());

  const auto& labels = *input.labels;
  auto is_owned_cell = [&](std::uint64_t code) {
    return std::binary_search(input.owned_cells.begin(),
                              input.owned_cells.end(), code);
  };
  auto is_shadow_cell = [&](std::uint64_t code) {
    return std::binary_search(input.shadow_cells.begin(),
                              input.shadow_cells.end(), code);
  };

  // Boundary cells: shadow cells, plus owned cells adjacent to a shadow
  // cell — the only cells another leaf can also see.
  auto is_boundary_cell = [&](std::uint64_t code) {
    if (is_shadow_cell(code)) return true;
    if (!is_owned_cell(code)) return false;
    bool boundary = false;
    geom::for_each_neighbor_within(
        geom::cell_from_code(code), input.shadow_rings,
        [&](geom::CellKey nbr) {
          if (is_shadow_cell(geom::cell_code(nbr))) boundary = true;
        });
    return boundary;
  };

  // Group member point indices by (cluster, cell), boundary cells only.
  struct CellBucket {
    std::vector<std::uint32_t> core;
    std::vector<std::uint32_t> noncore;
  };
  // cluster id -> cell code -> bucket
  std::vector<std::unordered_map<std::uint64_t, CellBucket>> buckets;
  std::vector<std::uint64_t> owned_points_of;

  for (std::uint32_t i = 0; i < input.points.size(); ++i) {
    const dbscan::ClusterId c = labels.cluster[i];
    if (c < 0) continue;
    const auto ci = static_cast<std::size_t>(c);
    if (ci >= buckets.size()) {
      buckets.resize(ci + 1);
      owned_points_of.resize(ci + 1, 0);
    }
    if (i < input.owned_count) ++owned_points_of[ci];

    const std::uint64_t code =
        geom::cell_code(input.geometry.cell_of(input.points[i]));
    if (!is_boundary_cell(code)) continue;
    CellBucket& bucket = buckets[ci][code];
    if (labels.core[i]) {
      bucket.core.push_back(i);
    } else {
      bucket.noncore.push_back(i);
    }
  }

  MergeSummary summary;
  summary.clusters.resize(buckets.size());
  for (std::size_t ci = 0; ci < buckets.size(); ++ci) {
    ClusterSummary& cluster = summary.clusters[ci];
    cluster.owned_points = owned_points_of[ci];

    // Deterministic cell order.
    std::vector<std::uint64_t> codes;
    codes.reserve(buckets[ci].size());
    // det-unordered-iter-ok: keys are sorted immediately below
    for (const auto& [code, bucket] : buckets[ci]) codes.push_back(code);
    std::sort(codes.begin(), codes.end());

    for (const std::uint64_t code : codes) {
      const CellBucket& bucket = buckets[ci].at(code);
      CellSummary cell;
      cell.cell_code = code;
      cell.from_shadow = is_shadow_cell(code);
      const auto reps = geom::select_cell_representatives(
          input.geometry, geom::cell_from_code(code), input.points,
          bucket.core);
      for (const std::uint32_t idx : reps) {
        cell.reps.push_back(SummaryPoint{input.points[idx].id,
                                         input.points[idx].x,
                                         input.points[idx].y});
      }
      for (const std::uint32_t idx : bucket.noncore) {
        cell.noncore.push_back(SummaryPoint{input.points[idx].id,
                                            input.points[idx].x,
                                            input.points[idx].y});
      }
      cluster.cells.push_back(std::move(cell));
    }
  }
  return summary;
}

}  // namespace mrscan::merge
