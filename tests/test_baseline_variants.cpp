// Parameterized equivalence sweep: every DBSCAN implementation in the repo
// must agree with the reference sequential DBSCAN across datasets and
// parameters — identical core flags and core-partition structure, and
// near-perfect DBDC quality (border ties may differ, as in any DBSCAN).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "data/sdss.hpp"
#include "data/synthetic.hpp"
#include "data/twitter.hpp"
#include "dbscan/disjoint_set.hpp"
#include "dbscan/rtree_dbscan.hpp"
#include "dbscan/sequential.hpp"
#include "dbscan/ti_dbscan.hpp"
#include "gpu/mrscan_gpu.hpp"
#include "quality/dbdc.hpp"

namespace mg = mrscan::geom;
namespace md = mrscan::dbscan;

namespace {

enum class Data { kUniform, kBlobs, kTwitter, kSdss };

struct Case {
  Data data;
  std::uint64_t seed;
  double eps;
  std::size_t min_pts;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* names[] = {"Uniform", "Blobs", "Twitter", "Sdss"};
  return std::string(names[static_cast<int>(info.param.data)]) + "_seed" +
         std::to_string(info.param.seed) + "_minpts" +
         std::to_string(info.param.min_pts);
}

mg::PointSet make_data(const Case& c) {
  switch (c.data) {
    case Data::kUniform:
      return mrscan::data::uniform_points(
          1200, mg::BBox{0.0, 0.0, 8.0, 8.0}, c.seed);
    case Data::kBlobs: {
      std::vector<mrscan::data::Blob> blobs{{0.0, 0.0, 0.3, 400},
                                            {6.0, 6.0, 0.4, 400},
                                            {0.0, 6.0, 0.2, 200}};
      return mrscan::data::gaussian_blobs(
          blobs, 150, mg::BBox{-3.0, -3.0, 9.0, 9.0}, c.seed);
    }
    case Data::kTwitter: {
      mrscan::data::TwitterConfig tw;
      tw.num_points = 3000;
      tw.seed = c.seed;
      return mrscan::data::generate_twitter(tw);
    }
    case Data::kSdss: {
      mrscan::data::SdssConfig sdss;
      sdss.num_points = 3000;
      sdss.seed = c.seed;
      return mrscan::data::generate_sdss(sdss);
    }
  }
  return {};
}

/// Core points must form identical groupings (bijection between labels).
void expect_core_partition_equal(const md::Labeling& a,
                                 const md::Labeling& b) {
  ASSERT_EQ(a.core, b.core);
  std::map<md::ClusterId, md::ClusterId> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.core[i]) continue;
    auto [fit, f_new] = fwd.emplace(a.cluster[i], b.cluster[i]);
    ASSERT_EQ(fit->second, b.cluster[i]) << "core split at " << i;
    auto [bit, b_new] = bwd.emplace(b.cluster[i], a.cluster[i]);
    ASSERT_EQ(bit->second, a.cluster[i]) << "core merge at " << i;
  }
}

class DbscanEquivalence : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    points_ = make_data(GetParam());
    params_ = {GetParam().eps, GetParam().min_pts};
    reference_ = md::dbscan_sequential(points_, params_);
  }
  mg::PointSet points_;
  md::DbscanParams params_;
  md::Labeling reference_;
};

}  // namespace

TEST_P(DbscanEquivalence, DisjointSetMatches) {
  const auto got = md::dbscan_disjoint_set(points_, params_);
  expect_core_partition_equal(reference_, got);
  EXPECT_GT(mrscan::quality::dbdc_quality(reference_.cluster, got.cluster),
            0.995);
}

TEST_P(DbscanEquivalence, TiDbscanMatches) {
  const auto got = md::dbscan_ti(points_, params_);
  expect_core_partition_equal(reference_, got);
  EXPECT_GT(mrscan::quality::dbdc_quality(reference_.cluster, got.cluster),
            0.995);
}

TEST_P(DbscanEquivalence, RtreeDbscanMatches) {
  const auto got = md::dbscan_rtree(points_, params_);
  expect_core_partition_equal(reference_, got);
  EXPECT_GT(mrscan::quality::dbdc_quality(reference_.cluster, got.cluster),
            0.995);
}

TEST_P(DbscanEquivalence, MrScanGpuMatches) {
  mrscan::gpu::MrScanGpuConfig config;
  config.params = params_;
  mrscan::gpu::VirtualDevice device;
  const auto got = mrscan::gpu::mrscan_gpu_dbscan(points_, config, device);
  expect_core_partition_equal(reference_, got.labels);
  EXPECT_GT(mrscan::quality::dbdc_quality(reference_.cluster,
                                          got.labels.cluster),
            0.995);
}

TEST_P(DbscanEquivalence, TiDbscanCountsLessWorkThanBruteForce) {
  md::TiDbscanStats stats;
  md::dbscan_ti(points_, params_, &stats);
  // The TI window must prune: far fewer distance computations than the
  // n-squared comparison (allowing the degenerate all-in-window case some
  // slack on tiny eps-dense data).
  const std::uint64_t brute =
      static_cast<std::uint64_t>(points_.size()) * points_.size();
  EXPECT_LT(stats.distance_computations, brute);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscanEquivalence,
    ::testing::Values(
        Case{Data::kUniform, 1, 0.45, 4}, Case{Data::kUniform, 2, 0.45, 8},
        Case{Data::kUniform, 3, 0.6, 16}, Case{Data::kBlobs, 1, 0.3, 4},
        Case{Data::kBlobs, 2, 0.3, 10}, Case{Data::kBlobs, 3, 0.25, 20},
        Case{Data::kTwitter, 1, 0.5, 4}, Case{Data::kTwitter, 2, 0.5, 12},
        Case{Data::kSdss, 1, 0.00015, 5}, Case{Data::kSdss, 2, 0.0003, 8}),
    case_name);
