
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/point_file.cpp" "src/io/CMakeFiles/mrscan_io.dir/point_file.cpp.o" "gcc" "src/io/CMakeFiles/mrscan_io.dir/point_file.cpp.o.d"
  "/root/repo/src/io/segment_file.cpp" "src/io/CMakeFiles/mrscan_io.dir/segment_file.cpp.o" "gcc" "src/io/CMakeFiles/mrscan_io.dir/segment_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/mrscan_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrscan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
