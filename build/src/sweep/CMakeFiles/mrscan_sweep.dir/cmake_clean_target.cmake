file(REMOVE_RECURSE
  "libmrscan_sweep.a"
)
