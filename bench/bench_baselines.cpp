// Baseline comparison (§2.2 context): wall-clock time of the DBSCAN
// implementations in this repository on identical data —
//   * sequential DBSCAN (the quality reference, ELKI's role),
//   * disjoint-set DBSCAN (PDSDBSCAN-style),
//   * CUDA-DClust on the virtual device,
//   * Mr. Scan's GPGPU DBSCAN (single leaf),
//   * the full Mr. Scan pipeline (partition + cluster + merge + sweep).
// Also reports the PDSDBSCAN proxy for communication: union operations.
#include <cstdio>

#include "common/experiment.hpp"
#include "core/mrscan.hpp"
#include "data/twitter.hpp"
#include "dbscan/disjoint_set.hpp"
#include "dbscan/rtree_dbscan.hpp"
#include "dbscan/sequential.hpp"
#include "dbscan/ti_dbscan.hpp"
#include "gpu/cuda_dclust.hpp"
#include "gpu/mrscan_gpu.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mrscan;
  const auto scale = bench::BenchScale::from_env();
  bench::print_header("Baselines: wall-clock seconds on identical data");
  std::printf("%10s | %10s %10s %10s %12s %12s %12s %12s | %10s\n",
              "points", "sequential", "ti-dbscan", "rtree", "disjoint",
              "cuda-dclust", "mrscan-gpu", "pipeline", "union_ops");

  for (std::uint64_t n = scale.quality_points / 4;
       n <= scale.quality_points; n *= 2) {
    data::TwitterConfig tw;
    tw.num_points = n;
    const auto points = data::generate_twitter(tw);
    const dbscan::DbscanParams params{0.1, 40};

    util::Timer t1;
    const auto seq = dbscan::dbscan_sequential(points, params);
    const double seq_s = t1.seconds();

    util::Timer t_ti;
    const auto ti = dbscan::dbscan_ti(points, params);
    const double ti_s = t_ti.seconds();

    util::Timer t_rt;
    const auto rt = dbscan::dbscan_rtree(points, params);
    const double rt_s = t_rt.seconds();

    util::Timer t2;
    dbscan::DisjointSetStats ds_stats;
    const auto dsu = dbscan::dbscan_disjoint_set(points, params, &ds_stats);
    const double dsu_s = t2.seconds();

    util::Timer t3;
    gpu::CudaDClustConfig dc_config;
    dc_config.params = params;
    gpu::VirtualDevice dc_dev;
    const auto dc = gpu::cuda_dclust(points, dc_config, dc_dev);
    const double dc_s = t3.seconds();

    util::Timer t4;
    gpu::MrScanGpuConfig ms_config;
    ms_config.params = params;
    gpu::VirtualDevice ms_dev;
    const auto ms = gpu::mrscan_gpu_dbscan(points, ms_config, ms_dev);
    const double ms_s = t4.seconds();

    util::Timer t5;
    core::MrScanConfig pipe_config;
    pipe_config.params = params;
    pipe_config.leaves = 8;
    const core::MrScan pipeline(pipe_config);
    const auto pipe = pipeline.run(points);
    const double pipe_s = t5.seconds();

    // Sanity: every implementation found the same number of clusters.
    if (seq.cluster_count() != ms.labels.cluster_count() ||
        seq.cluster_count() != pipe.cluster_count) {
      std::printf("WARNING: cluster counts disagree (%zu seq, %zu gpu, %zu "
                  "pipeline)\n",
                  seq.cluster_count(), ms.labels.cluster_count(),
                  pipe.cluster_count);
    }
    (void)dsu;
    (void)dc;
    (void)ti;
    (void)rt;

    std::printf("%10llu | %10.3f %10.3f %10.3f %12.3f %12.3f %12.3f "
                "%12.3f | %10zu\n",
                static_cast<unsigned long long>(n), seq_s, ti_s, rt_s,
                dsu_s, dc_s, ms_s, pipe_s, ds_stats.union_ops);
  }
  return 0;
}
