# Empty dependencies file for mrscan_core.
# This may be replaced when dependencies are built.
