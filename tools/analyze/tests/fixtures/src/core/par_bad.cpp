// Fixture: par-ref-capture positives — writes to by-ref-captured state
// inside pool tasks.
#include <cstddef>
#include <vector>

#include "util/thread_pool.hpp"

namespace fixture {

void flag_assignment(mrscan::util::ThreadPool& pool) {
  bool touched = false;
  pool.parallel_for(0, 8, [&](std::size_t) { touched = true; });
}

void mutating_call(mrscan::util::ThreadPool& pool) {
  std::vector<std::size_t> order;
  pool.parallel_for(0, 8, [&](std::size_t i) { order.push_back(i); });
}

void shared_counter(mrscan::util::ThreadPool& pool) {
  std::size_t count = 0;
  pool.submit([&count] { ++count; });
}

void foreign_slot(mrscan::util::ThreadPool& pool,
                  std::vector<int>& out, std::size_t hot) {
  pool.parallel_for(0, out.size(),
                    [&out, hot](std::size_t) { out[hot] = 1; });
}

}  // namespace fixture
