// Fixture: raw-io positives — C stdio open and mmap outside src/io/.
#include <cstdio>
#include <sys/mman.h>

namespace fixture {

bool stdio_open(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void* map_anonymous() {
  return mmap(nullptr, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
}

}  // namespace fixture
