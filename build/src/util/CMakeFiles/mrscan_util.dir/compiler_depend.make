# Empty compiler generated dependencies file for mrscan_util.
# This may be replaced when dependencies are built.
