#include <gtest/gtest.h>

#include "quality/cluster_stats.hpp"

namespace mq = mrscan::quality;
namespace msw = mrscan::sweep;
using mrscan::dbscan::kNoise;

namespace {

msw::LabeledPoint lp(std::uint64_t id, double x, double y, float w,
                     std::int64_t cluster) {
  return msw::LabeledPoint{{id, x, y, w}, cluster};
}

}  // namespace

TEST(ClusterStats, CountsWeightsAndCentroids) {
  std::vector<msw::LabeledPoint> records{
      lp(1, 0.0, 0.0, 1.0f, 0), lp(2, 2.0, 0.0, 3.0f, 0),
      lp(3, 5.0, 5.0, 1.0f, 1)};
  const auto stats = mq::cluster_statistics(records);
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by count descending: cluster 0 first.
  EXPECT_EQ(stats[0].cluster, 0);
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_FLOAT_EQ(stats[0].weight_sum, 4.0f);
  EXPECT_DOUBLE_EQ(stats[0].centroid_x, 1.0);
  // Weighted centroid pulled toward the heavier point.
  EXPECT_DOUBLE_EQ(stats[0].weighted_centroid_x, (0.0 * 1 + 2.0 * 3) / 4.0);
  EXPECT_EQ(stats[1].cluster, 1);
  EXPECT_EQ(stats[1].count, 1u);
}

TEST(ClusterStats, NoiseSummarisedSeparately) {
  std::vector<msw::LabeledPoint> records{
      lp(1, 0.0, 0.0, 1.0f, 0), lp(2, 1.0, 1.0, 1.0f, kNoise),
      lp(3, 2.0, 2.0, 1.0f, kNoise)};
  const auto stats = mq::cluster_statistics(records);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].cluster, kNoise);
  EXPECT_EQ(stats[0].count, 2u);
}

TEST(ClusterStats, ExtentAndDensity) {
  std::vector<msw::LabeledPoint> records{
      lp(1, 0.0, 0.0, 1.0f, 0), lp(2, 2.0, 1.0, 1.0f, 0),
      lp(3, 1.0, 0.5, 1.0f, 0)};
  const auto stats = mq::cluster_statistics(records);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_DOUBLE_EQ(stats[0].extent.width(), 2.0);
  EXPECT_DOUBLE_EQ(stats[0].extent.height(), 1.0);
  EXPECT_DOUBLE_EQ(stats[0].density(), 3.0 / 2.0);
}

TEST(ClusterStats, DegenerateExtentHasInfiniteDensity) {
  std::vector<msw::LabeledPoint> records{lp(1, 1.0, 1.0, 1.0f, 0)};
  const auto stats = mq::cluster_statistics(records);
  EXPECT_TRUE(std::isinf(stats[0].density()));
}

TEST(ClusterStats, TopByWeightExcludesNoiseAndTruncates) {
  std::vector<msw::LabeledPoint> records{
      lp(1, 0, 0, 10.0f, 0), lp(2, 0, 0, 1.0f, 1), lp(3, 0, 0, 5.0f, 2),
      lp(4, 0, 0, 99.0f, kNoise)};
  const auto top = mq::top_clusters_by_weight(records, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].cluster, 0);
  EXPECT_EQ(top[1].cluster, 2);
}

TEST(ClusterStats, EmptyInput) {
  EXPECT_TRUE(mq::cluster_statistics({}).empty());
  EXPECT_TRUE(mq::top_clusters_by_weight({}, 5).empty());
}
