// Streamed binary clustered-output file.
//
// Out-of-core runs cannot hold the labeled output resident, so the sweep
// phase streams records to disk as each leaf's scatter callback fires.
// Records are io::kLabeledRecordSize bytes — the 28-byte point record
// followed by the global cluster id (i64) — under a small header:
//
//   magic "MRLB" (4) | version u32                             -- 8 bytes
//
// No record count in the header: the writer appends until closed, and
// the reader derives the count from the file size (rejecting a size
// that is not a whole number of records). Callback order on the
// simulated event loop is deterministic, so the record order matches a
// resident run's result.output byte-for-byte (DESIGN §8, §15).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "geometry/point.hpp"

namespace mrscan::io {

/// Append-only writer for the labeled binary format. close() (or the
/// destructor) flushes; close() throws with errno context on failure,
/// the destructor swallows (use close() on the success path).
class LabeledFileWriter {
 public:
  explicit LabeledFileWriter(const std::filesystem::path& path);
  ~LabeledFileWriter();

  LabeledFileWriter(const LabeledFileWriter&) = delete;
  LabeledFileWriter& operator=(const LabeledFileWriter&) = delete;

  void append(const geom::Point& point, std::int64_t cluster);
  std::uint64_t records() const { return records_; }
  void close();

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
  bool open_ = false;
};

/// Streaming reader; next() returns false at a clean end-of-file and
/// throws on a torn tail (the constructor already rejects files whose
/// size is not header + n × kLabeledRecordSize).
class LabeledFileReader {
 public:
  explicit LabeledFileReader(const std::filesystem::path& path);

  std::uint64_t records() const { return records_; }
  bool next(geom::Point& point, std::int64_t& cluster);

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  std::uint64_t records_ = 0;
  std::uint64_t cursor_ = 0;
};

/// Number of records in a labeled binary file (validates the header and
/// that the size is a whole number of records).
std::uint64_t labeled_record_count(const std::filesystem::path& path);

}  // namespace mrscan::io
