// Fixture: pool-phase-loops negatives — modern and legacy suppression
// spellings.
#include <cstddef>
#include <vector>

namespace fixture {

struct Segment {
  int weight = 0;
};

int annotated_modern(const std::vector<Segment>& segments) {
  int total = 0;
  // pool-phase-loops-ok: fold carries a loop dependency; cannot fan out
  for (std::size_t s = 0; s < segments.size(); ++s) {
    total += total / 2 + segments[s].weight;
  }
  return total;
}

int annotated_legacy(const std::vector<Segment>& segments) {
  int total = 0;
  // sequential-ok: fold carries a loop dependency; cannot fan out
  for (std::size_t s = 0; s < segments.size(); ++s) {
    total += total / 2 + segments[s].weight;
  }
  return total;
}

}  // namespace fixture
