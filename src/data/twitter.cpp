#include "data/twitter.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mrscan::data {

namespace {

struct City {
  double x, y;
  double sigma_x, sigma_y;
  double cum_weight;  // cumulative, for inverse-CDF sampling
};

std::vector<City> make_cities(const TwitterConfig& config, util::Rng& rng) {
  std::vector<City> cities;
  cities.reserve(config.num_cities);
  double cum = 0.0;
  const double log_min = std::log(config.city_sigma_min);
  const double log_max = std::log(config.city_sigma_max);
  for (std::size_t i = 0; i < config.num_cities; ++i) {
    City c;
    c.x = rng.uniform(config.window.min_x, config.window.max_x);
    c.y = rng.uniform(config.window.min_y, config.window.max_y);
    const double sigma =
        std::exp(rng.uniform(log_min, log_max));
    // Mild anisotropy: cities sprawl along one axis.
    const double aspect = rng.uniform(0.6, 1.6);
    c.sigma_x = sigma * aspect;
    c.sigma_y = sigma / aspect;
    cum += rng.pareto(1.0, config.city_weight_alpha);
    c.cum_weight = cum;
    cities.push_back(c);
  }
  return cities;
}

const City& pick_city(const std::vector<City>& cities, util::Rng& rng) {
  const double total = cities.back().cum_weight;
  const double u = rng.uniform(0.0, total);
  const auto it = std::lower_bound(
      cities.begin(), cities.end(), u,
      [](const City& c, double v) { return c.cum_weight < v; });
  return it == cities.end() ? cities.back() : *it;
}

}  // namespace

geom::PointSet generate_twitter(const TwitterConfig& config,
                                geom::PointId first_id) {
  MRSCAN_REQUIRE(config.num_cities > 0);
  MRSCAN_REQUIRE(config.background_fraction >= 0.0 &&
                 config.background_fraction <= 1.0);
  util::Rng city_rng(config.seed);
  const std::vector<City> cities = make_cities(config, city_rng);
  util::Rng rng = city_rng.split();

  geom::PointSet points;
  points.reserve(config.num_points);
  for (std::uint64_t i = 0; i < config.num_points; ++i) {
    geom::Point p;
    p.id = first_id + i;
    p.weight = 1.0f;
    if (rng.next_double() < config.background_fraction) {
      p.x = rng.uniform(config.window.min_x, config.window.max_x);
      p.y = rng.uniform(config.window.min_y, config.window.max_y);
    } else {
      const City& c = pick_city(cities, rng);
      // Clamp into the window so the grid extent stays bounded.
      p.x = std::clamp(c.x + rng.normal(0.0, c.sigma_x), config.window.min_x,
                       config.window.max_x);
      p.y = std::clamp(c.y + rng.normal(0.0, c.sigma_y), config.window.min_y,
                       config.window.max_y);
    }
    points.push_back(p);
  }
  return points;
}

index::CellHistogram twitter_histogram(const TwitterConfig& config,
                                       double eps,
                                       std::uint64_t sample_points) {
  MRSCAN_REQUIRE(sample_points > 0);
  TwitterConfig sample_config = config;
  sample_config.num_points = std::min(config.num_points, sample_points);
  const geom::PointSet sample = generate_twitter(sample_config);
  const geom::GridGeometry geometry{config.window.min_x, config.window.min_y,
                                    eps};
  index::CellHistogram hist(geometry, sample);

  if (sample_config.num_points == config.num_points) return hist;

  // Scale sampled counts up to the virtual dataset size, rounding but
  // keeping every sampled cell non-empty.
  const double scale = static_cast<double>(config.num_points) /
                       static_cast<double>(sample_config.num_points);
  std::vector<index::CellHistogram::Entry> scaled;
  scaled.reserve(hist.cell_count());
  for (const auto& e : hist.entries()) {
    const auto count = static_cast<std::uint64_t>(
        std::max(1.0, std::round(static_cast<double>(e.count) * scale)));
    scaled.push_back({e.code, count});
  }
  return index::CellHistogram(std::move(scaled));
}

}  // namespace mrscan::data
