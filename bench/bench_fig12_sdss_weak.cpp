// Figure 12: SDSS weak scaling — elapsed time at Eps = 0.00015,
// MinPts = 5, up to 1.6 billion points on 2,048 leaves.
//
// Paper shape: resembles the Twitter curve (Figure 8); "most of the
// increase in time is contributed by the partitioner".
#include <cstdio>

#include "common/experiment.hpp"

int main() {
  using namespace mrscan;
  const auto scale = bench::BenchScale::from_env();
  bench::print_header("Figure 12: SDSS weak scaling, total elapsed time");
  std::printf("replica: %llu points/leaf, max leaves %zu\n",
              static_cast<unsigned long long>(scale.points_per_leaf),
              scale.max_leaves);

  bench::print_row_header();
  for (const auto& config : bench::table1_configs()) {
    if (bench::skip_clamped_row(config, scale)) continue;
    if (config.leaves > 2048) break;  // the SDSS experiment stops at 2048
    bench::RunOptions options;
    options.dataset = bench::Dataset::kSdss;
    options.eps = 0.00015;
    options.paper_min_pts = 5;
    options.bench_name = "fig12_sdss_weak";
    const auto row = bench::run_config(config, options, scale);
    bench::print_row(row);
  }
  return 0;
}
