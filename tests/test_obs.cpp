// Observability subsystem battery.
//
// The contracts under test (ISSUE 4 / DESIGN §9):
//   * registry merges are deterministic: concurrent sharded writes yield
//     the same snapshot — and the same JSON bytes — as sequential ones;
//   * spans carry the right clock domain and sort deterministically;
//   * the exporters produce exactly the documented JSON shapes;
//   * enabling observability on a fault-injected multi-threaded pipeline
//     run changes NOTHING about the clustering: output records, cluster
//     count, and fault counters are identical, while the trace covers all
//     four phases plus the leaf-recovery re-read, and the sim.* gauges
//     equal MrScanResult::PhaseBreakdown exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/mrscan.hpp"
#include "data/twitter.hpp"
#include "fault/plan.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "util/thread_pool.hpp"

namespace mc = mrscan::core;
namespace mo = mrscan::obs;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CountersGaugesHistogramsMerge) {
  mo::Registry reg;
  reg.add("c", 3);
  reg.add("c", 4);
  reg.set("g", 1.5);
  reg.set_max("m", 2.0);
  reg.set_max("m", 1.0);  // lower value must not win
  reg.observe("h", 1.0);
  reg.observe("h", 3.0);

  const mo::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 1.5);
  EXPECT_DOUBLE_EQ(snap.gauge("m"), 2.0);
  const mo::MetricSample* h = snap.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, mo::MetricKind::kHistogram);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->value, 4.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 3.0);
  // Snapshot is name-sorted.
  std::vector<std::string> names;
  for (const auto& s : snap.samples) names.push_back(s.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ObsRegistry, ZeroDeltaCreatesTheCounter) {
  mo::Registry reg;
  reg.add("present", 0);
  const mo::MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("present"), nullptr);
  EXPECT_EQ(snap.counter("present"), 0u);
  EXPECT_EQ(snap.find("absent"), nullptr);
  EXPECT_EQ(snap.counter("absent", 42u), 42u);
}

TEST(ObsRegistry, ConcurrentWritesMatchSequentialAndAreByteStable) {
  const std::size_t kTasks = 256;

  // Sequential reference.
  mo::Registry seq;
  for (std::size_t i = 0; i < kTasks; ++i) {
    seq.add("tasks");
    seq.add("bytes", i);
    seq.observe("size", static_cast<double>(i % 7));
    seq.set_max("peak", static_cast<double>(i));
  }
  const std::string seq_json = mo::metrics_json(seq.snapshot());

  // The same writes fanned out over a pool, twice; all merge rules are
  // commutative, so both snapshots must render to the same bytes.
  for (int round = 0; round < 2; ++round) {
    mo::Registry par;
    mrscan::util::ThreadPool pool(4);
    pool.parallel_for(0, kTasks, [&](std::size_t i) {
      par.add("tasks");
      par.add("bytes", i);
      par.observe("size", static_cast<double>(i % 7));
      par.set_max("peak", static_cast<double>(i));
    });
    EXPECT_EQ(mo::metrics_json(par.snapshot()), seq_json) << round;
  }
}

TEST(ObsRegistry, KindMismatchIsRejected) {
  mo::Registry reg;
  reg.add("metric");
  EXPECT_THROW(reg.set("metric", 1.0), std::exception);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  mo::Tracer tracer(false);
  tracer.sim_span("a", "net", 0, 0.0, 1.0);
  tracer.wall_span("b", "phase", 0.0, 1.0);
  { mo::Tracer::WallScope scope(tracer, "c", "leaf"); }
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(ObsTracer, SimSpansCarryEventQueueTime) {
  // Spans placed from inside a discrete-event simulation must carry the
  // virtual clock, not wall time.
  mrscan::sim::EventQueue queue;
  mo::Tracer tracer(true);
  queue.schedule_at(2.5, [&] {
    tracer.sim_span("op", "net", 7, queue.now(), queue.now() + 0.5);
  });
  queue.run();

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].clock, mo::SpanClock::kSim);
  EXPECT_DOUBLE_EQ(spans[0].begin, 2.5);
  EXPECT_DOUBLE_EQ(spans[0].end, 3.0);
  EXPECT_EQ(spans[0].track, 7u);
}

TEST(ObsTracer, SpansSortByClockThenBeginThenSeq) {
  mo::Tracer tracer(true);
  tracer.sim_span("sim-late", "net", 0, 5.0, 6.0);
  tracer.wall_span("wall", "phase", 0.0, 1.0);
  tracer.sim_span("sim-early", "net", 0, 1.0, 2.0);
  tracer.sim_span("sim-tie-2", "net", 0, 3.0, 4.0);
  tracer.sim_span("sim-tie-1", "net", 1, 3.0, 4.0);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "wall");  // wall clock sorts first
  EXPECT_EQ(spans[1].name, "sim-early");
  EXPECT_EQ(spans[2].name, "sim-tie-2");  // equal begin: recording order
  EXPECT_EQ(spans[3].name, "sim-tie-1");
  EXPECT_EQ(spans[4].name, "sim-late");
}

TEST(ObsTracer, WallScopeMeasuresNonNegativeInterval) {
  mo::Tracer tracer(true);
  { mo::Tracer::WallScope scope(tracer, "scoped", "leaf"); }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].clock, mo::SpanClock::kWall);
  EXPECT_GE(spans[0].end, spans[0].begin);
  EXPECT_GE(spans[0].begin, 0.0);  // relative to the tracer's epoch
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExport, MetricsJsonGolden) {
  mo::Registry reg;
  reg.add("b.counter", 3);
  reg.set("a.gauge", 0.5);
  reg.observe("c.hist", 2.0);
  EXPECT_EQ(mo::metrics_json(reg.snapshot()),
            "{\"schema\":\"mrscan-metrics-v1\",\"metrics\":["
            "{\"name\":\"a.gauge\",\"kind\":\"gauge\",\"value\":0.5},"
            "{\"name\":\"b.counter\",\"kind\":\"counter\",\"value\":3},"
            "{\"name\":\"c.hist\",\"kind\":\"histogram\",\"count\":1,"
            "\"sum\":2,\"min\":2,\"max\":2}"
            "]}\n");
}

TEST(ObsExport, ChromeTraceJsonGolden) {
  mo::Tracer tracer(true);
  tracer.sim_span("filter \"q\"", "net", 3, 1.0, 1.5);
  EXPECT_EQ(mo::chrome_trace_json(tracer),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"host wall clock\"}},"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
            "\"args\":{\"name\":\"titan virtual clock\"}},"
            "{\"name\":\"filter \\\"q\\\"\",\"cat\":\"net\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":3,\"ts\":1e+06,\"dur\":5e+05}"
            "]}\n");
}

// ---------------------------------------------------------------------------
// Pipeline differential: observability changes nothing.
// ---------------------------------------------------------------------------

namespace {

mrscan::geom::PointSet obs_points() {
  mrscan::data::TwitterConfig tw;
  tw.num_points = 8000;
  tw.seed = 11;
  return mrscan::data::generate_twitter(tw);
}

mc::MrScanConfig obs_config() {
  mc::MrScanConfig config;
  config.params = {0.1, 20};
  config.leaves = 4;
  config.fanout = 4;
  config.partition_nodes = 2;
  config.host_threads = 4;
  // The acceptance scenario: a killed leaf recovered via partition
  // re-read, under host concurrency.
  config.fault_plan.kill(1, /*before_cluster=*/false);
  config.fault_plan.retry.leaf_timeout_s = 2.0;
  return config;
}

bool has_span(const std::vector<mo::TraceSpan>& spans,
              const std::string& needle) {
  return std::any_of(spans.begin(), spans.end(),
                     [&](const mo::TraceSpan& s) {
                       return s.name.find(needle) != std::string::npos;
                     });
}

}  // namespace

TEST(ObsPipeline, TracingLeavesFaultInjectedOutputByteIdentical) {
  const auto points = obs_points();

  auto cfg_off = obs_config();
  const auto off = mc::MrScan(cfg_off).run(points);
  ASSERT_EQ(off.fault.leaves_recovered, 1u);

  auto cfg_on = obs_config();
  cfg_on.observability.enabled = true;
  const auto on = mc::MrScan(cfg_on).run(points);

  // (a) byte-identical clustering output.
  EXPECT_EQ(on.cluster_count, off.cluster_count);
  EXPECT_TRUE(on.output == off.output);
  // Counters and simulated times agree too.
  EXPECT_EQ(on.merges_detected, off.merges_detected);
  EXPECT_EQ(on.fault.leaves_recovered, off.fault.leaves_recovered);
  EXPECT_EQ(on.fault.packets_dropped, off.fault.packets_dropped);
  EXPECT_EQ(on.fault.retries, off.fault.retries);
  EXPECT_EQ(on.fault.timeouts, off.fault.timeouts);
  EXPECT_DOUBLE_EQ(on.fault.recovery_seconds, off.fault.recovery_seconds);
  EXPECT_DOUBLE_EQ(on.sim.total(), off.sim.total());
  EXPECT_DOUBLE_EQ(on.gpu_dbscan_seconds, off.gpu_dbscan_seconds);

  // (b) the trace covers all four phases plus the recovery re-read.
  ASSERT_NE(on.obs, nullptr);
  EXPECT_TRUE(on.obs->tracing());
  const auto spans = on.obs->tracer().spans();
  for (const char* phase : {"phase:partition", "phase:cluster",
                            "phase:merge", "phase:sweep"}) {
    EXPECT_TRUE(has_span(spans, phase)) << phase;
  }
  EXPECT_TRUE(has_span(spans, "reread leaf 1 partition"));
  EXPECT_TRUE(has_span(spans, "recluster leaf 1"));

  // The disabled run recorded no spans at all.
  ASSERT_NE(off.obs, nullptr);
  EXPECT_FALSE(off.obs->tracing());
  EXPECT_TRUE(off.obs->tracer().spans().empty());

  // (c) metrics snapshot phase seconds equal PhaseBreakdown exactly.
  const mo::MetricsSnapshot snap = on.obs->metrics().snapshot();
  EXPECT_EQ(snap.gauge("sim.startup"), on.sim.startup);
  EXPECT_EQ(snap.gauge("sim.partition"), on.sim.partition);
  EXPECT_EQ(snap.gauge("sim.cluster_merge"), on.sim.cluster_merge);
  EXPECT_EQ(snap.gauge("sim.sweep"), on.sim.sweep);
  EXPECT_EQ(snap.gauge("sim.total"), on.sim.total());
  // ... and the registry is where MrScanResult's numbers came from.
  EXPECT_EQ(snap.counter("fault.leaves_recovered"),
            on.fault.leaves_recovered);
  EXPECT_EQ(snap.counter("merge.merges_detected"), on.merges_detected);
  EXPECT_EQ(snap.gauge("gpu.device_seconds_max"), on.gpu_dbscan_seconds);
  EXPECT_GT(snap.counter("pool.tasks"), 0u);
  EXPECT_GT(snap.counter("net.merge.packets_up"), 0u);
  EXPECT_GT(snap.counter("net.partition.packets_up"), 0u);
  EXPECT_GT(snap.counter("partition.parts"), 0u);

  // The wall.* gauges back MrScanResult::wall verbatim.
  for (const char* phase : {"partition", "cluster", "merge", "sweep"}) {
    EXPECT_EQ(snap.gauge(std::string("wall.") + phase),
              on.wall.get(phase))
        << phase;
  }
}

TEST(ObsPipeline, DisabledRunStillPopulatesRegistry) {
  // Observability off is the default — but the registry (not the tracer)
  // is always live, because MrScanResult is populated from it.
  const auto points = obs_points();
  auto cfg = obs_config();
  cfg.fault_plan = {};
  const auto result = mc::MrScan(cfg).run(points);

  ASSERT_NE(result.obs, nullptr);
  EXPECT_FALSE(result.obs->tracing());
  const mo::MetricsSnapshot snap = result.obs->metrics().snapshot();
  EXPECT_EQ(snap.gauge("sim.total"), result.sim.total());
  EXPECT_EQ(snap.counter("fault.leaves_recovered"), 0u);
  // No tracing => no per-task pool instrumentation.
  EXPECT_EQ(snap.find("pool.tasks"), nullptr);
  // The one-line summary renders every phase.
  const std::string summary = result.obs->phase_summary();
  for (const char* phase : {"partition", "cluster", "merge", "sweep"}) {
    EXPECT_NE(summary.find(phase), std::string::npos) << summary;
  }
}

TEST(ObsPipeline, MetricsJsonIsByteStableAcrossIdenticalRuns) {
  const auto points = obs_points();
  std::string first;
  for (int round = 0; round < 2; ++round) {
    auto cfg = obs_config();
    cfg.observability.enabled = true;
    const auto result = mc::MrScan(cfg).run(points);
    // Drop the host-measured values: wall seconds and queue depths vary
    // run to run by design; everything else must render identically.
    mo::MetricsSnapshot snap = result.obs->metrics().snapshot();
    std::erase_if(snap.samples, [](const mo::MetricSample& s) {
      return s.name.rfind("wall.", 0) == 0 || s.name.rfind("pool.", 0) == 0;
    });
    const std::string json = mo::metrics_json(snap);
    if (round == 0) {
      first = json;
    } else {
      EXPECT_EQ(json, first);
    }
  }
}
