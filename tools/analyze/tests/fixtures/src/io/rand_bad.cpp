// Fixture: no-raw-rand positives — C generator, random_device,
// default-seeded engine.
#include <cstdlib>
#include <random>

namespace fixture {

int c_generator() {
  return rand() % 7;
}

unsigned hardware_entropy() {
  std::random_device rd;
  return rd();
}

double unseeded_engine() {
  std::mt19937 gen;
  return static_cast<double>(gen());
}

}  // namespace fixture
