// Fixture: no-raw-rand negatives — suppressed or explicitly seeded.
#include <cstdlib>
#include <random>

namespace fixture {

int c_generator_annotated() {
  return rand() % 7;  // no-raw-rand-ok: fixture exercising suppression
}

double seeded_engine(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<double>(gen());
}

}  // namespace fixture
