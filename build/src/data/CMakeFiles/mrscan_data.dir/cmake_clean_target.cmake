file(REMOVE_RECURSE
  "libmrscan_data.a"
)
