"""Concurrency family: the thread-pool task contracts.

par-ref-capture — DESIGN §8's "write only your own index slot": a
lambda handed to ThreadPool::submit/parallel_for may freely *read*
by-reference captures, but a write to one is a data race unless it is
(a) a subscripted write indexed by the task's own parameter,
(b) an atomic operation, or (c) performed under a lock guard declared
in the lambda body.

scratch-scope — DESIGN §10's ownership rule: an index::QueryScratch is
not thread-safe; one declared outside a pool task but used inside it
is shared across workers.
"""

from __future__ import annotations

from ..context import FileContext
from ..lexer import IDENT, PUNCT, Token, match_paren
from ..scopes import Lambda, find_typed_declarations

_POOL_METHODS = ("submit", "parallel_for")

_ASSIGN_OPS = frozenset(("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="))
_MUTATORS = frozenset((
    "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
    "insert", "emplace", "emplace_hint", "erase", "clear", "resize",
    "reserve", "assign", "append", "swap", "merge", "extract",
    "push", "pop",
))
_ATOMIC_OK = frozenset((
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "store", "exchange", "compare_exchange_weak", "compare_exchange_strong",
    "notify_one", "notify_all", "wait", "count_down", "arrive_and_wait",
    "release", "acquire", "try_acquire", "unite",
))
_LOCK_TYPES = ("lock_guard", "scoped_lock", "unique_lock", "shared_lock")


def _pool_call_lambdas(ctx: FileContext) -> list[tuple[str, Lambda]]:
    """(method, lambda) for every lambda lexically passed to a
    ThreadPool submit/parallel_for call."""
    code = ctx.code
    n = len(code)
    out: list[tuple[str, Lambda]] = []
    for i, t in enumerate(code):
        if t.kind != IDENT or t.text not in _POOL_METHODS:
            continue
        if i + 1 >= n or code[i + 1].kind != PUNCT \
                or code[i + 1].text != "(":
            continue
        # Require a member-ish call (`pool.submit`, `pool_->parallel_for`)
        # or a free-standing parallel_for; bare `submit(` alone is too
        # generic to claim.
        if i >= 1 and code[i - 1].kind == PUNCT \
                and code[i - 1].text in (".", "->", "::"):
            pass
        elif t.text == "submit":
            continue
        close = match_paren(code, i + 1)
        arg_range = range(i + 2, close)
        for lam in ctx.lambdas:
            if lam.intro_index in arg_range and lam.body_start < close:
                out.append((t.text, lam))
    return out


def _body_local_names(code: list[Token], lam: Lambda) -> set[str]:
    body = code[lam.body_start:lam.body_end + 1]
    locals_: set[str] = set(lam.params)
    for d in find_typed_declarations(body, lambda _t: True):
        locals_.add(d.name)
    return locals_


def _has_lock_guard(code: list[Token], lam: Lambda) -> bool:
    return any(
        code[k].kind == IDENT and code[k].text in _LOCK_TYPES
        for k in lam.body_range())


def _subscript_contains(code: list[Token], open_bracket: int,
                        names: set[str]) -> bool:
    close = match_paren(code, open_bracket, "[", "]")
    return any(code[k].kind == IDENT and code[k].text in names
               for k in range(open_bracket + 1, close))


def check_par_ref_capture(ctx: FileContext) -> None:
    code = ctx.code
    n = len(code)
    for method, lam in _pool_call_lambdas(ctx):
        by_ref_all = lam.capture_default == "&"
        explicit_refs = set(lam.ref_captures)
        if not by_ref_all and not explicit_refs:
            continue
        locals_ = _body_local_names(code, lam)
        own_indices = set(lam.params) | locals_
        lock_guarded = _has_lock_guard(code, lam)

        for k in lam.body_range():
            t = code[k]
            if t.kind != IDENT:
                continue
            name = t.text
            if name in locals_:
                continue
            if not by_ref_all and name not in explicit_refs:
                continue
            prev = code[k - 1] if k >= 1 else None
            if prev is not None and prev.kind == PUNCT \
                    and prev.text in (".", "->", "::"):
                continue  # member/qualified access, not the capture itself
            nxt = code[k + 1] if k + 1 < n else None
            if nxt is None:
                continue

            flagged_as = None
            if nxt.kind == PUNCT and nxt.text in _ASSIGN_OPS:
                flagged_as = f"assignment '{name} {nxt.text}'"
            elif nxt.kind == PUNCT and nxt.text in ("++", "--"):
                flagged_as = f"increment of '{name}'"
            elif prev is not None and prev.kind == PUNCT \
                    and prev.text in ("++", "--"):
                flagged_as = f"increment of '{name}'"
            elif nxt.kind == PUNCT and nxt.text in (".", "->") \
                    and k + 2 < n and code[k + 2].kind == IDENT:
                member = code[k + 2].text
                if member in _ATOMIC_OK:
                    continue
                if member in _MUTATORS and k + 3 < n \
                        and code[k + 3].kind == PUNCT \
                        and code[k + 3].text == "(":
                    flagged_as = f"mutating call '{name}.{member}()'"
            elif nxt.kind == PUNCT and nxt.text == "[":
                # Own-slot writes are the blessed pattern.
                close_sub = match_paren(code, k + 1, "[", "]")
                after = code[close_sub + 1] if close_sub + 1 < n else None
                is_write = after is not None and after.kind == PUNCT and (
                    after.text in _ASSIGN_OPS
                    or (after.text in (".", "->") and close_sub + 2 < n
                        and code[close_sub + 2].kind == IDENT
                        and code[close_sub + 2].text in _MUTATORS))
                if is_write and not _subscript_contains(
                        code, k + 1, own_indices):
                    flagged_as = (f"write through '{name}[...]' whose "
                                  "index is not derived from the task's "
                                  "own parameter")
            if flagged_as is None:
                continue
            if lock_guarded:
                continue  # synchronized by a RAII guard in the body
            ctx.report(
                t.line, "par-ref-capture",
                f"{flagged_as} inside a lambda passed to "
                f"ThreadPool::{method} mutates by-ref-captured state; "
                "write only your own index slot, use an atomic, guard "
                "with a lock, or annotate with "
                "// par-ref-capture-ok: <reason>")


def check_scratch_scope(ctx: FileContext) -> None:
    code = ctx.code
    decls = ctx.declarations(lambda t: "QueryScratch" in t)
    if not decls:
        return
    by_name: dict[str, list[int]] = {}
    for d in decls:
        by_name.setdefault(d.name, []).append(d.token_index)
    for method, lam in _pool_call_lambdas(ctx):
        body = set(lam.body_range())
        for name, positions in by_name.items():
            if any(p in body for p in positions):
                continue  # task-local scratch: the blessed pattern
            if not any(p < lam.body_start for p in positions):
                continue
            for k in lam.body_range():
                t = code[k]
                if t.kind == IDENT and t.text == name:
                    prev = code[k - 1] if k >= 1 else None
                    if prev is not None and prev.kind == PUNCT \
                            and prev.text in (".", "->", "::"):
                        continue
                    ctx.report(
                        t.line, "scratch-scope",
                        f"QueryScratch '{name}' is declared outside this "
                        f"ThreadPool::{method} task but used inside it; "
                        "a scratch is single-owner per task (DESIGN §10) "
                        "— declare it inside the lambda, or annotate "
                        "with // scratch-scope-ok: <reason>")
                    break  # one finding per (lambda, scratch)
