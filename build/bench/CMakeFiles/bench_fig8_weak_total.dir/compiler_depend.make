# Empty compiler generated dependencies file for bench_fig8_weak_total.
# This may be replaced when dependencies are built.
